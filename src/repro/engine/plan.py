"""Compiled query plans: a query automaton flattened into dense int tables.

A :class:`CompiledPlan` int-encodes an automaton's states ``0..k-1`` and its
useful symbols ``0..s-1`` and pre-flattens the transition relation into

* ``delta[symbol_pos]``  -- a dict mapping a state to the tuple of its
  successor states on that symbol, and
* ``rdelta[symbol_pos]`` -- the same shape inverted (predecessors; used by
  the backward product BFS of ``evaluate_all``),

so the executor kernels never touch automaton objects or allocate per-step
frozensets.  The per-symbol tables are sparse (states without a transition
on a symbol are simply absent): compilation is ``O(transitions)``, which
matters because the learner's merge guard compiles thousands of one-shot
candidate automata over wide alphabets.  Plans are independent of any
particular graph; the executor binds a plan's symbol positions to a
:class:`~repro.engine.index.GraphIndex`'s label ids at call time (a cheap
``O(labels)`` pairing).

Plans also carry a structural :attr:`~CompiledPlan.fingerprint` (see
:func:`automaton_fingerprint`): structurally identical automata -- in
particular the canonical DFAs of one language, which are always BFS-renamed
the same way -- share one plan-cache entry.

Kernel automata (:class:`~repro.automata.kernel.TableDFA`) are already int
tables, so compiling one is a cheap re-shaping of its flat transition array
-- no state interning, no sorting -- and its fingerprint is computed
directly from the kernel arrays (``trans.tobytes()`` + the finals bitmask).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.automata.dfa import DFA
from repro.automata.kernel import MergeFold, TableDFA
from repro.automata.nfa import NFA
from repro.errors import GraphError

Fingerprint = Hashable


class CompiledPlan:
    """An automaton compiled to dense int transition tables."""

    __slots__ = (
        "num_states",
        "initials",
        "finals",
        "is_final",
        "symbols",
        "symbol_positions",
        "delta",
        "state_moves",
        "_rdelta",
        "_rstate_moves",
        "accepts_empty_word",
        "is_empty_language",
        "fingerprint",
    )

    def __init__(
        self,
        *,
        num_states: int,
        initials: tuple[int, ...],
        finals: frozenset[int],
        symbols: tuple[str, ...],
        delta: tuple[dict[int, tuple[int, ...]], ...],
        fingerprint: Fingerprint,
    ) -> None:
        self.num_states = num_states
        self.initials = initials
        self.finals = finals
        self.is_final = tuple(state in finals for state in range(num_states))
        self.symbols = symbols
        self.symbol_positions = {symbol: pos for pos, symbol in enumerate(symbols)}
        self.delta = delta
        self.state_moves = _group_by_state(delta, num_states)
        self._rdelta: tuple[dict[int, tuple[int, ...]], ...] | None = None
        self._rstate_moves: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...] | None = None
        self.accepts_empty_word = any(state in finals for state in initials)
        self.is_empty_language = not self._some_final_reachable()
        self.fingerprint = fingerprint

    @property
    def rdelta(self) -> tuple[dict[int, tuple[int, ...]], ...]:
        """Predecessor tables, built on first use (only ``evaluate_all`` needs
        them; the forward early-exit kernels never pay for the inversion)."""
        if self._rdelta is None:
            self._rdelta = _reverse(self.delta)
        return self._rdelta

    @property
    def rstate_moves(self) -> tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]:
        """Per-state backward moves ``(symbol_pos, predecessor states)``."""
        if self._rstate_moves is None:
            self._rstate_moves = _group_by_state(self.rdelta, self.num_states)
        return self._rstate_moves

    def __getstate__(self) -> dict:
        """Pickle support (plans are shipped to shard pool workers).

        The lazily built reverse tables are dropped from the payload --
        workers rebuild them on first use, and the forward tables they
        derive from are part of the state, so the round trip is lossless.
        """
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_rdelta"] = None
        state["_rstate_moves"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def _some_final_reachable(self) -> bool:
        if not self.finals:
            return False
        if self.accepts_empty_word:
            return True
        reached = set(self.initials)
        stack = list(self.initials)
        while stack:
            state = stack.pop()
            for by_state in self.delta:
                for target in by_state.get(state, ()):
                    if target in self.finals:
                        return True
                    if target not in reached:
                        reached.add(target)
                        stack.append(target)
        return False

    def bind_symbols(self, label_ids: dict[str, int]) -> tuple[int, ...]:
        """Map each plan symbol position to the index's label id (or -1).

        The kernels walk a state's own moves and use this array to reach the
        right CSR block; symbols absent from the graph map to -1 and are
        skipped, which is what makes evaluation insensitive to alphabet
        mismatches (a query label the graph never uses just matches nothing).
        """
        return tuple(label_ids.get(symbol, -1) for symbol in self.symbols)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(states={self.num_states}, symbols={len(self.symbols)}, "
            f"empty={self.is_empty_language})"
        )


def _group_by_state(
    tables: tuple[dict[int, tuple[int, ...]], ...], num_states: int
) -> tuple[tuple[tuple[int, tuple[int, ...]], ...], ...]:
    """Regroup per-symbol tables into per-state ``(symbol_pos, states)`` moves.

    The kernels' inner loop iterates a popped state's own moves, so its cost
    scales with the state's out-degree instead of the full bound alphabet.
    """
    moves: list[list[tuple[int, tuple[int, ...]]]] = [[] for _ in range(num_states)]
    for symbol_pos, by_state in enumerate(tables):
        for state, targets in by_state.items():
            moves[state].append((symbol_pos, targets))
    return tuple(tuple(m) for m in moves)


def _reverse(
    delta: tuple[dict[int, tuple[int, ...]], ...]
) -> tuple[dict[int, tuple[int, ...]], ...]:
    """Invert ``delta`` into predecessor tables of the same shape."""
    reversed_tables = []
    for by_state in delta:
        preds: dict[int, list[int]] = {}
        for source, targets in by_state.items():
            for target in targets:
                preds.setdefault(target, []).append(source)
        reversed_tables.append({state: tuple(p) for state, p in preds.items()})
    return tuple(reversed_tables)


def automaton_fingerprint(automaton: DFA | NFA | TableDFA | MergeFold) -> Fingerprint:
    """A structural fingerprint of an automaton (raw state names).

    Two automata with identical states, initials, finals and transitions
    fingerprint identically -- which is enough for plan-cache sharing,
    because :func:`repro.automata.minimize.canonical_dfa` already renames
    states ``0..n-1`` in BFS order: equal queries arrive here structurally
    identical.  Isomorphic automata under *different* namings merely miss
    the cache (and compile to an equivalent plan); deliberately no relabeling
    happens here, since fingerprinting sits on the merge-guard hot path where
    most automata are evaluated exactly once.

    Kernel tables fingerprint from their raw arrays (bytes of the flat
    transition table plus the finals bitmask) -- no per-transition hashing.
    """
    if isinstance(automaton, MergeFold):
        automaton = automaton.to_table()
    if isinstance(automaton, TableDFA):
        return automaton.fingerprint()
    transitions = frozenset(automaton.transitions())
    if isinstance(automaton, DFA):
        return (
            "dfa",
            automaton.alphabet.symbols,
            len(automaton),
            automaton.initial,
            automaton.final_states,
            transitions,
        )
    return (
        "nfa",
        automaton.alphabet.symbols,
        len(automaton),
        automaton.initial_states,
        automaton.final_states,
        transitions,
    )


def compile_plan(
    automaton: DFA | NFA | TableDFA | MergeFold, *, fingerprint: Fingerprint | None = None
) -> CompiledPlan:
    """Flatten a query automaton into a :class:`CompiledPlan`.

    Raises :class:`~repro.errors.GraphError` on NFAs with epsilon
    transitions, matching the reference product construction's contract
    (determinize first).  Kernel tables skip the interning pass entirely:
    their states are already ``0..n-1`` and their transitions are read
    straight off the flat array.
    """
    if isinstance(automaton, MergeFold):
        automaton = automaton.to_table()
    if isinstance(automaton, TableDFA):
        return _compile_table(automaton, fingerprint)
    if isinstance(automaton, NFA):
        if automaton.has_epsilon_transitions:
            raise GraphError("query automata must be epsilon-free; determinize first")
        state_list = sorted(automaton.states, key=repr)
        state_ids = {state: index for index, state in enumerate(state_list)}
        initials = tuple(sorted(state_ids[s] for s in automaton.initial_states))
        finals = frozenset(state_ids[s] for s in automaton.final_states)
        transitions = list(automaton.transitions())
    else:
        state_list = sorted(automaton.states, key=repr)
        state_ids = {state: index for index, state in enumerate(state_list)}
        initials = (state_ids[automaton.initial],)
        finals = frozenset(state_ids[s] for s in automaton.final_states)
        transitions = list(automaton.transitions())

    used_symbols = tuple(sorted({symbol for _, symbol, _ in transitions}))
    symbol_positions = {symbol: pos for pos, symbol in enumerate(used_symbols)}
    num_states = len(state_list)
    tables: list[dict[int, set[int]]] = [{} for _ in used_symbols]
    for source, symbol, target in transitions:
        tables[symbol_positions[symbol]].setdefault(state_ids[source], set()).add(
            state_ids[target]
        )
    delta = tuple(
        {state: tuple(sorted(targets)) for state, targets in by_state.items()}
        for by_state in tables
    )
    return CompiledPlan(
        num_states=num_states,
        initials=initials,
        finals=finals,
        symbols=used_symbols,
        delta=delta,
        fingerprint=(
            automaton_fingerprint(automaton) if fingerprint is None else fingerprint
        ),
    )


def _compile_table(table: TableDFA, fingerprint: Fingerprint | None) -> CompiledPlan:
    """Re-shape a kernel :class:`TableDFA` into a plan without interning."""
    trans, m, n = table.trans, table.m, table.n
    symbols = table.alphabet.symbols
    used_positions = sorted(
        {position for position in range(m) if any(trans[s * m + position] >= 0 for s in range(n))}
    )
    tables: list[dict[int, tuple[int, ...]]] = []
    used_symbols: list[str] = []
    for position in used_positions:
        by_state: dict[int, tuple[int, ...]] = {}
        for state in range(n):
            target = trans[state * m + position]
            if target >= 0:
                by_state[state] = (target,)
        tables.append(by_state)
        used_symbols.append(symbols[position])
    return CompiledPlan(
        num_states=n,
        initials=(table.initial,),
        finals=frozenset(table.iter_finals()),
        symbols=tuple(used_symbols),
        delta=tuple(tables),
        fingerprint=table.fingerprint() if fingerprint is None else fingerprint,
    )
