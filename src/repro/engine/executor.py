"""Product-BFS kernels over a :class:`GraphIndex` and a :class:`CompiledPlan`.

Every kernel works on the int-encoded product space: the pair ``(node v,
automaton state s)`` is the single int ``v * k + s`` (``k`` = number of plan
states), and the per-label CSR slices of the index replace hash-set
adjacency lookups.  The inner loop walks the popped state's *own* moves
(``plan.state_moves``), so its cost scales with the automaton's out-degree,
not with the alphabet.  This is the replacement for the dict/frozenset-based
construction in :mod:`repro.graphdb.product`, with identical semantics (the
parity tests in ``tests/engine`` pin the two against each other).

All kernels take and return *int node ids*; mapping to and from user-facing
node identifiers is the :class:`~repro.engine.engine.QueryEngine`'s job.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.automata.dfa import DFA
from repro.automata.kernel import TableAutomaton
from repro.automata.nfa import NFA
from repro.engine.index import GraphIndex
from repro.engine.plan import CompiledPlan
from repro.errors import GraphError, QueryError
from repro.telemetry.metrics import Counter, MetricsRegistry

#: Backend names the executor dispatch understands.  ``auto`` resolves to
#: ``numpy`` when importable, else ``python``; the pure-python kernels are
#: always retained as the parity oracle (the ``reference_*`` pattern one
#: layer up).
BACKENDS = ("auto", "python", "numpy")

_NUMPY = None  # unresolved; becomes the module or False after first probe


def _load_numpy():
    """The numpy module, or ``False`` when not installed (cached probe)."""
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
        except ImportError:
            _NUMPY = False
        else:
            _NUMPY = numpy
    return _NUMPY


def have_numpy() -> bool:
    """Whether the optional numpy backend can be used in this process."""
    return bool(_load_numpy())


def resolve_backend(requested: str) -> str:
    """Resolve a configured backend name to a concrete one.

    ``auto`` picks ``numpy`` when importable and falls back to ``python``
    silently; asking for ``numpy`` explicitly without numpy installed is an
    error (the caller opted out of the fallback).
    """
    if requested not in BACKENDS:
        raise QueryError(
            f"unknown engine backend {requested!r}: expected one of {BACKENDS}"
        )
    if requested == "auto":
        return "numpy" if have_numpy() else "python"
    if requested == "numpy" and not have_numpy():
        raise QueryError(
            "backend 'numpy' requested but numpy is not importable; "
            "install the [numpy] extra or use backend='auto'"
        )
    return requested


class KernelStats:
    """Mutable counters a kernel accumulates into (shared with the engine).

    The two counters are telemetry :class:`~repro.telemetry.metrics.Counter`
    instruments (registered as ``kernel_states_expanded_total`` /
    ``kernel_edges_scanned_total`` when a registry is supplied).  Kernels
    accumulate into locals and flush once per call through :meth:`add`,
    which takes the instruments' locks -- one locked add per kernel call,
    safe under the service layer's concurrent workers.  The int properties
    remain for reads and single-threaded resets (not atomic).
    """

    __slots__ = ("_states", "_edges", "_lock")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            self._states = Counter("kernel_states_expanded_total")
            self._edges = Counter("kernel_edges_scanned_total")
        else:
            self._states = registry.counter(
                "kernel_states_expanded_total",
                help="Product pairs popped by the BFS kernels",
            )
            self._edges = registry.counter(
                "kernel_edges_scanned_total",
                help="CSR adjacency entries touched by the BFS kernels",
            )
        # Both instruments share one lock so a flush is a single locked
        # add -- parallel shard workers' merge path must not serialize on
        # two locks per kernel call.
        self._lock = self._states._lock
        self._edges._lock = self._lock

    @property
    def states_expanded(self) -> int:
        return self._states.value

    @states_expanded.setter
    def states_expanded(self, value: int) -> None:
        self._states.value = value

    @property
    def edges_scanned(self) -> int:
        return self._edges.value

    @edges_scanned.setter
    def edges_scanned(self, value: int) -> None:
        self._edges.value = value

    def add(self, states: int, edges: int) -> None:
        """Atomically add one kernel call's work to both counters.

        One lock acquisition covers both instruments (they share a lock),
        so a call flushes in a single locked section.
        """
        with self._lock:
            self._states.value += states
            self._edges.value += edges

    def mark(self) -> tuple[int, int]:
        """The current ``(states_expanded, edges_scanned)`` pair -- take one
        before and after a kernel call to attribute its work to a profile."""
        return self._states.value, self._edges.value


def evaluate_all(
    index: GraphIndex,
    plan: CompiledPlan,
    stats: KernelStats | None = None,
    *,
    depth_sizes: list[int] | None = None,
    seed_lo: int = 0,
    seed_hi: int | None = None,
) -> frozenset[int]:
    """Int ids of all nodes the query selects (monadic semantics).

    One *backward* BFS over the product from every accepting pair computes
    the co-reachable set; a node is selected iff one of its initial pairs is
    co-reachable.  ``O(|E| * k + |V| * k)`` like the reference, but on a
    dense bitmap over int codes.

    ``depth_sizes``, when given, receives the number of product pairs
    expanded per BFS layer (layer 0 = the accepting seed pairs) -- the
    per-depth frontier profile telemetry attaches to query results.

    ``seed_lo``/``seed_hi`` restrict the accepting *seed* pairs to a node
    range -- the sharding hook: co-reachability from a union of seed sets is
    the union of the per-shard co-reachable sets, so the parallel layer
    unions the selected sets of disjoint ranges.  (The empty-word and
    empty-language guards are range-independent by design; the parallel
    layer answers them before sharding.)
    """
    if plan.is_empty_language:
        return frozenset()
    n, k = index.num_nodes, plan.num_states
    if plan.accepts_empty_word:
        # Every node trivially matches via the empty path.
        return frozenset(range(n))
    sym_labels = plan.bind_symbols(index.label_ids)
    rstate_moves = plan.rstate_moves
    bwd_offsets, bwd_targets = index.bwd_offsets, index.bwd_targets

    seed_stop = n if seed_hi is None else seed_hi
    visited = bytearray(n * k)
    queue: deque[int] = deque()
    for final in plan.finals:
        for node in range(seed_lo, seed_stop):
            code = node * k + final
            visited[code] = 1
            queue.append(code)

    expanded = 0
    scanned = 0
    track = depth_sizes is not None
    level_left = 0
    if track and queue:
        level_left = len(queue)
        depth_sizes.append(level_left)
    while queue:
        code = queue.popleft()
        node, state = divmod(code, k)
        expanded += 1
        for symbol_pos, pred_states in rstate_moves[state]:
            label_id = sym_labels[symbol_pos]
            if label_id < 0:
                continue
            offsets = bwd_offsets[label_id]
            start, stop = offsets[node], offsets[node + 1]
            if start == stop:
                continue
            scanned += stop - start
            for pred_node in bwd_targets[label_id][start:stop]:
                base = pred_node * k
                for pred_state in pred_states:
                    pred_code = base + pred_state
                    if not visited[pred_code]:
                        visited[pred_code] = 1
                        queue.append(pred_code)
        if track:
            # After the last pop of a layer, the queue holds exactly the
            # next layer (FIFO BFS invariant) -- no per-push bookkeeping.
            level_left -= 1
            if not level_left:
                level_left = len(queue)
                if level_left:
                    depth_sizes.append(level_left)
    if stats is not None:
        stats.add(expanded, scanned)

    initials = plan.initials
    return frozenset(
        node for node in range(n) if any(visited[node * k + i] for i in initials)
    )


def selects(
    index: GraphIndex,
    plan: CompiledPlan,
    node_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """Whether the query selects the one given node (early-exit forward BFS)."""
    return any_selects(index, plan, (node_id,), stats)


def any_selects(
    index: GraphIndex,
    plan: CompiledPlan,
    node_ids: Iterable[int],
    stats: KernelStats | None = None,
) -> bool:
    """Whether the query selects at least one of the given nodes.

    Multi-source forward product BFS with an exit as soon as an accepting
    automaton state is reached -- the engine-side version of the
    intersection-emptiness test of Algorithm 1's merge guard.
    """
    starts = list(node_ids)
    if not starts or plan.is_empty_language:
        return False
    if plan.accepts_empty_word:
        return True
    k = plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    is_final = plan.is_final
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets

    # Sparse visited set (int-coded pairs): early exits usually touch a tiny
    # fraction of the product, so a dense |V|*k bitmap would cost more to
    # allocate than the whole search.
    visited: set[int] = set()
    queue: deque[int] = deque()
    for node in starts:
        for initial in plan.initials:
            code = node * k + initial
            if code not in visited:
                visited.add(code)
                queue.append(code)

    expanded = 0
    scanned = 0
    try:
        while queue:
            code = queue.popleft()
            node, state = divmod(code, k)
            expanded += 1
            for symbol_pos, next_states in state_moves[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for target_node in fwd_targets[label_id][start:stop]:
                    base = target_node * k
                    for target_state in next_states:
                        if is_final[target_state]:
                            return True
                        target_code = base + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            queue.append(target_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def _automaton_ends(automaton: DFA | NFA):
    """(initial states, final states) of an automaton; rejects epsilon NFAs."""
    if isinstance(automaton, DFA):
        return (automaton.initial,), automaton.final_states
    if automaton.has_epsilon_transitions:
        raise GraphError("query automata must be epsilon-free; determinize first")
    return tuple(automaton.initial_states), automaton.final_states


def lazy_any_selects(
    index: GraphIndex,
    automaton: DFA | NFA,
    node_ids: Iterable[int],
    stats: KernelStats | None = None,
) -> bool:
    """Uncompiled :func:`any_selects`: walk the automaton object directly.

    The learner's merge guard evaluates thousands of candidate automata
    exactly once each, so plan compilation (let alone caching) can never pay
    for itself there.  This kernel skips it entirely -- the automaton's own
    transition dicts drive the BFS while the graph side still runs on the
    CSR index.
    """
    initials, finals = _automaton_ends(automaton)
    if not finals:
        return False
    starts = list(node_ids)
    if not starts:
        return False
    if any(initial in finals for initial in initials):
        return True
    label_ids = index.label_ids
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    outgoing = automaton.outgoing

    visited: set[tuple[int, object]] = {
        (node, initial) for node in starts for initial in initials
    }
    queue: deque[tuple[int, object]] = deque(visited)
    expanded = 0
    scanned = 0
    try:
        while queue:
            node, state = queue.popleft()
            expanded += 1
            for symbol, target_state in outgoing(state):
                label_id = label_ids.get(symbol)
                if label_id is None:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                if target_state in finals:
                    return True
                for target_node in fwd_targets[label_id][start:stop]:
                    pair = (target_node, target_state)
                    if pair not in visited:
                        visited.add(pair)
                        queue.append(pair)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def table_any_selects(
    index: GraphIndex,
    view: TableAutomaton,
    node_ids: Iterable[int],
    stats: KernelStats | None = None,
    *,
    max_depth: int | None = None,
) -> bool:
    """:func:`lazy_any_selects` for kernel automata (all-int inner loop).

    ``view`` is a :class:`~repro.automata.kernel.TableDFA` or an in-place
    :class:`~repro.automata.kernel.MergeFold` hypothesis mid-merge: the
    walk reads the flat transition array directly (``find`` canonicalizes
    fold targets), the product pair ``(node, state)`` is one int code, and
    symbol ids are bound to graph label ids once per call.  This is the
    merge-guard hot path of the kernel-backed learner: no automaton object
    is compiled, copied or even touched beyond its arrays.

    ``max_depth`` bounds the accepted word's length: the BFS runs in
    word-length layers (first visit = shortest witness, so the pair dedup
    stays sound) and stops after ``max_depth`` of them.  This is how the
    interactive layer asks "does this candidate have an uncovered path of
    at most k symbols?" against the round's uncovered-words automaton.
    """
    trans, m, find, finals, initial = view.kernel_walk()
    if not finals:
        return False
    starts = list(node_ids)
    if not starts:
        return False
    if (finals >> initial) & 1:
        return True
    sym_labels = view.bind_labels(index.label_ids)
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    span = len(trans) // m if m else 1

    visited: set[int] = set()
    level: list[int] = []
    for node in starts:
        code = node * span + initial
        if code not in visited:
            visited.add(code)
            level.append(code)

    expanded = 0
    scanned = 0
    depth = 0
    try:
        while level and (max_depth is None or depth < max_depth):
            depth += 1
            next_level: list[int] = []
            for code in level:
                node, state = divmod(code, span)
                expanded += 1
                base = state * m
                for position in range(m):
                    target_state = trans[base + position]
                    if target_state < 0:
                        continue
                    label_id = sym_labels[position]
                    if label_id < 0:
                        continue
                    offsets = fwd_offsets[label_id]
                    start, stop = offsets[node], offsets[node + 1]
                    if start == stop:
                        continue
                    scanned += stop - start
                    if find is not None:
                        target_state = find(target_state)
                    if (finals >> target_state) & 1:
                        return True
                    for target_node in fwd_targets[label_id][start:stop]:
                        target_code = target_node * span + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            next_level.append(target_code)
            level = next_level
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def table_evaluate_all(
    index: GraphIndex,
    view: TableAutomaton,
    stats: KernelStats | None = None,
    *,
    max_depth: int | None = None,
    depth_sizes: list[int] | None = None,
) -> frozenset[int]:
    """:func:`evaluate_all` for kernel automata (no plan compilation).

    One *backward* product BFS from every accepting pair computes, for all
    nodes at once, whether the node realizes an accepted word -- the batched
    counterpart of running :func:`table_any_selects` per node.  ``max_depth``
    bounds the accepted word length (BFS layers run in word-length order),
    which is how the interactive layer's one-walk-per-round batched
    k-informativeness check cuts the product at ``k`` symbols.
    """
    trans, m, find, finals, initial = view.kernel_walk()
    if find is not None:
        raise GraphError(
            "table_evaluate_all needs a committed table; call MergeFold.to_table() first"
        )
    if not finals:
        return frozenset()
    n = index.num_nodes
    span = len(trans) // m if m else 1
    if (finals >> initial) & 1:
        # Every node trivially matches via the empty path.
        return frozenset(range(n))
    sym_labels = view.bind_labels(index.label_ids)
    bwd_offsets, bwd_targets = index.bwd_offsets, index.bwd_targets

    # Reverse automaton adjacency: state -> [(symbol position, [pred states])].
    rmoves: list[dict[int, list[int]]] = [{} for _ in range(span)]
    for state in range(span):
        base = state * m
        for position in range(m):
            target = trans[base + position]
            if target >= 0 and sym_labels[position] >= 0:
                rmoves[target].setdefault(position, []).append(state)
    rstate_moves = [list(moves.items()) for moves in rmoves]

    visited = bytearray(n * span)
    frontier: list[int] = []
    for final_state in range(span):
        if not (finals >> final_state) & 1:
            continue
        for node in range(n):
            code = node * span + final_state
            visited[code] = 1
            frontier.append(code)

    depth = 0
    expanded = 0
    scanned = 0
    if depth_sizes is not None and frontier:
        depth_sizes.append(len(frontier))
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[int] = []
        for code in frontier:
            node, state = divmod(code, span)
            expanded += 1
            for position, pred_states in rstate_moves[state]:
                label_id = sym_labels[position]
                offsets = bwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for pred_node in bwd_targets[label_id][start:stop]:
                    base = pred_node * span
                    for pred_state in pred_states:
                        pred_code = base + pred_state
                        if not visited[pred_code]:
                            visited[pred_code] = 1
                            next_frontier.append(pred_code)
        frontier = next_frontier
        if depth_sizes is not None and frontier:
            depth_sizes.append(len(frontier))
    if stats is not None:
        stats.add(expanded, scanned)

    return frozenset(
        node for node in range(n) if visited[node * span + initial]
    )


def table_pair_selects(
    index: GraphIndex,
    view: TableAutomaton,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """:func:`lazy_pair_selects` for kernel automata (all-int inner loop)."""
    trans, m, find, finals, initial = view.kernel_walk()
    if not finals:
        return False
    if origin_id == end_id and (finals >> initial) & 1:
        return True
    sym_labels = view.bind_labels(index.label_ids)
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    span = len(trans) // m if m else 1

    visited: set[int] = {origin_id * span + initial}
    queue: deque[int] = deque(visited)
    expanded = 0
    scanned = 0
    try:
        while queue:
            code = queue.popleft()
            node, state = divmod(code, span)
            expanded += 1
            base = state * m
            for position in range(m):
                target_state = trans[base + position]
                if target_state < 0:
                    continue
                label_id = sym_labels[position]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                if find is not None:
                    target_state = find(target_state)
                is_final = (finals >> target_state) & 1
                for target_node in fwd_targets[label_id][start:stop]:
                    if is_final and target_node == end_id:
                        return True
                    target_code = target_node * span + target_state
                    if target_code not in visited:
                        visited.add(target_code)
                        queue.append(target_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def lazy_pair_selects(
    index: GraphIndex,
    automaton: DFA | NFA,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """Uncompiled :func:`pair_selects` for one-shot candidate automata."""
    initials, finals = _automaton_ends(automaton)
    if not finals:
        return False
    if origin_id == end_id and any(initial in finals for initial in initials):
        return True
    label_ids = index.label_ids
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    outgoing = automaton.outgoing

    visited: set[tuple[int, object]] = {(origin_id, initial) for initial in initials}
    queue: deque[tuple[int, object]] = deque(visited)
    expanded = 0
    scanned = 0
    try:
        while queue:
            node, state = queue.popleft()
            expanded += 1
            for symbol, target_state in outgoing(state):
                label_id = label_ids.get(symbol)
                if label_id is None:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                is_final = target_state in finals
                for target_node in fwd_targets[label_id][start:stop]:
                    if is_final and target_node == end_id:
                        return True
                    pair = (target_node, target_state)
                    if pair not in visited:
                        visited.add(pair)
                        queue.append(pair)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def binary_evaluate(
    index: GraphIndex,
    plan: CompiledPlan,
    stats: KernelStats | None = None,
    *,
    source_lo: int = 0,
    source_hi: int | None = None,
) -> frozenset[tuple[int, int]]:
    """All selected ``(source id, end id)`` pairs (binary semantics).

    One forward product BFS per source node, as in the reference.
    ``source_lo``/``source_hi`` restrict the source nodes walked -- the
    sharding hook: sources are independent, so disjoint ranges union to the
    full answer.
    """
    if plan.is_empty_language:
        return frozenset()
    n, k = index.num_nodes, plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    is_final = plan.is_final
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets

    result: set[tuple[int, int]] = set()
    expanded = 0
    scanned = 0
    for source in range(source_lo, n if source_hi is None else source_hi):
        visited: set[int] = set()
        queue: deque[int] = deque()
        for initial in plan.initials:
            code = source * k + initial
            if code not in visited:
                visited.add(code)
                queue.append(code)
        if plan.accepts_empty_word:
            result.add((source, source))
        while queue:
            code = queue.popleft()
            node, state = divmod(code, k)
            expanded += 1
            for symbol_pos, next_states in state_moves[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for target_node in fwd_targets[label_id][start:stop]:
                    base = target_node * k
                    for target_state in next_states:
                        target_code = base + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            queue.append(target_code)
                            if is_final[target_state]:
                                result.add((source, target_node))
    if stats is not None:
        stats.add(expanded, scanned)
    return frozenset(result)


def pair_selects(
    index: GraphIndex,
    plan: CompiledPlan,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """Whether the query selects the pair ``(origin, end)`` (early exit)."""
    if plan.is_empty_language:
        return False
    if origin_id == end_id and plan.accepts_empty_word:
        return True
    k = plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    is_final = plan.is_final
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets

    visited: set[int] = set()
    queue: deque[int] = deque()
    for initial in plan.initials:
        code = origin_id * k + initial
        if code not in visited:
            visited.add(code)
            queue.append(code)

    expanded = 0
    scanned = 0
    try:
        while queue:
            code = queue.popleft()
            node, state = divmod(code, k)
            expanded += 1
            for symbol_pos, next_states in state_moves[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for target_node in fwd_targets[label_id][start:stop]:
                    base = target_node * k
                    for target_state in next_states:
                        if target_node == end_id and is_final[target_state]:
                            return True
                        target_code = base + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            queue.append(target_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


# -- the numpy backend --------------------------------------------------------
#
# Vectorized twins of the whole-graph kernels above.  A layer of the product
# BFS is expanded in one shot: the frontier is an int64 array of product
# codes, the CSR gather turns per-node (start, stop) ranges into one flat
# neighbour array via repeat/cumsum arithmetic, and dedup is one
# ``np.unique`` plus a visited-bool mask.  The ``offsets``/``targets``
# arrays are viewed zero-copy through ``np.frombuffer`` -- both the heap
# ``array`` form and the storage layer's mmap ``memoryview`` form expose the
# buffer protocol, so a snapshot-backed index vectorizes without a copy.
# Results are converted back through ``.tolist()`` (true python ints), which
# keeps the returned frozensets byte-identical to the pure-python oracle's.


def _np_view(buffer):
    """A read-only int numpy view over a CSR array (zero-copy)."""
    np = _load_numpy()
    itemsize = buffer.itemsize
    return np.frombuffer(buffer, dtype=np.int64 if itemsize == 8 else np.int32)


def _np_gather(offsets, targets, nodes, np):
    """All CSR neighbours of ``nodes`` flattened, with per-node repeats.

    Returns ``(neighbours, counts, total)`` where ``counts[i]`` is node i's
    degree and ``neighbours`` concatenates every node's targets slice in
    order (duplicate input nodes contribute duplicate slices, exactly like
    the scalar loop).
    """
    starts = offsets[nodes]
    counts = offsets[nodes + 1] - starts
    total = int(counts.sum())
    if not total:
        return None, counts, 0
    # positions[j] = starts[i] + (j - first flat slot of node i): the classic
    # vectorized CSR expansion -- one arange, two repeats, no python loop.
    shifts = np.cumsum(counts) - counts
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(shifts, counts)
        + np.repeat(starts.astype(np.int64), counts)
    )
    return targets[positions], counts, total


def numpy_evaluate_all(
    index: GraphIndex,
    plan: CompiledPlan,
    stats: KernelStats | None = None,
    *,
    depth_sizes: list[int] | None = None,
    seed_lo: int = 0,
    seed_hi: int | None = None,
) -> frozenset[int]:
    """Vectorized :func:`evaluate_all` (identical results, layered expansion)."""
    np = _load_numpy()
    if plan.is_empty_language:
        return frozenset()
    n, k = index.num_nodes, plan.num_states
    if plan.accepts_empty_word:
        return frozenset(range(n))
    sym_labels = plan.bind_symbols(index.label_ids)
    rstate_moves = plan.rstate_moves
    bwd_offsets = [_np_view(o) for o in index.bwd_offsets]
    bwd_targets = [_np_view(t) for t in index.bwd_targets]

    visited = np.zeros(n * k, dtype=bool)
    finals = np.fromiter(plan.finals, dtype=np.int64, count=len(plan.finals))
    nodes = np.arange(seed_lo, n if seed_hi is None else seed_hi, dtype=np.int64)
    frontier = (nodes[:, None] * k + finals[None, :]).reshape(-1)
    visited[frontier] = True

    expanded = 0
    scanned = 0
    if depth_sizes is not None and frontier.size:
        depth_sizes.append(int(frontier.size))
    while frontier.size:
        expanded += int(frontier.size)
        layer_nodes, layer_states = np.divmod(frontier, k)
        grown: list = []
        for state in np.unique(layer_states):
            moves = rstate_moves[state]
            if not moves:
                continue
            at_state = layer_nodes[layer_states == state]
            for symbol_pos, pred_states in moves:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                preds, _, total = _np_gather(
                    bwd_offsets[label_id], bwd_targets[label_id], at_state, np
                )
                if not total:
                    continue
                scanned += total
                base = preds * k
                for pred_state in pred_states:
                    grown.append(base + pred_state)
        if grown:
            fresh = np.unique(np.concatenate(grown))
            fresh = fresh[~visited[fresh]]
            visited[fresh] = True
            frontier = fresh
        else:
            frontier = nodes[:0]
        if depth_sizes is not None and frontier.size:
            depth_sizes.append(int(frontier.size))
    if stats is not None:
        stats.add(expanded, scanned)

    initials = np.fromiter(plan.initials, dtype=np.int64, count=len(plan.initials))
    codes = np.arange(n, dtype=np.int64)[:, None] * k + initials[None, :]
    selected = np.nonzero(visited[codes].any(axis=1))[0]
    return frozenset(selected.tolist())


def numpy_table_evaluate_all(
    index: GraphIndex,
    view: TableAutomaton,
    stats: KernelStats | None = None,
    *,
    max_depth: int | None = None,
    depth_sizes: list[int] | None = None,
) -> frozenset[int]:
    """Vectorized :func:`table_evaluate_all` (identical results and layers)."""
    np = _load_numpy()
    trans, m, find, finals, initial = view.kernel_walk()
    if find is not None:
        raise GraphError(
            "table_evaluate_all needs a committed table; call MergeFold.to_table() first"
        )
    if not finals:
        return frozenset()
    n = index.num_nodes
    span = len(trans) // m if m else 1
    if (finals >> initial) & 1:
        return frozenset(range(n))
    sym_labels = view.bind_labels(index.label_ids)
    bwd_offsets = [_np_view(o) for o in index.bwd_offsets]
    bwd_targets = [_np_view(t) for t in index.bwd_targets]

    # Reverse automaton adjacency, exactly as the scalar kernel builds it.
    rmoves: list[dict[int, list[int]]] = [{} for _ in range(span)]
    for state in range(span):
        base = state * m
        for position in range(m):
            target = trans[base + position]
            if target >= 0 and sym_labels[position] >= 0:
                rmoves[target].setdefault(position, []).append(state)
    rstate_moves = [list(moves.items()) for moves in rmoves]

    visited = np.zeros(n * span, dtype=bool)
    final_states = np.fromiter(
        (s for s in range(span) if (finals >> s) & 1), dtype=np.int64
    )
    nodes = np.arange(n, dtype=np.int64)
    frontier = (final_states[None, :] + nodes[:, None] * span).reshape(-1)
    visited[frontier] = True

    depth = 0
    expanded = 0
    scanned = 0
    if depth_sizes is not None and frontier.size:
        depth_sizes.append(int(frontier.size))
    while frontier.size and (max_depth is None or depth < max_depth):
        depth += 1
        expanded += int(frontier.size)
        layer_nodes, layer_states = np.divmod(frontier, span)
        grown: list = []
        for state in np.unique(layer_states):
            moves = rstate_moves[state]
            if not moves:
                continue
            at_state = layer_nodes[layer_states == state]
            for position, pred_states in moves:
                label_id = sym_labels[position]
                preds, _, total = _np_gather(
                    bwd_offsets[label_id], bwd_targets[label_id], at_state, np
                )
                if not total:
                    continue
                scanned += total
                base = preds * span
                for pred_state in pred_states:
                    grown.append(base + pred_state)
        if grown:
            fresh = np.unique(np.concatenate(grown))
            fresh = fresh[~visited[fresh]]
            visited[fresh] = True
            frontier = fresh
        else:
            frontier = nodes[:0]
        if depth_sizes is not None and frontier.size:
            depth_sizes.append(int(frontier.size))
    if stats is not None:
        stats.add(expanded, scanned)

    selected = np.nonzero(visited[nodes * span + initial])[0]
    return frozenset(selected.tolist())


def numpy_binary_evaluate(
    index: GraphIndex,
    plan: CompiledPlan,
    stats: KernelStats | None = None,
    *,
    source_lo: int = 0,
    source_hi: int | None = None,
) -> frozenset[tuple[int, int]]:
    """Vectorized :func:`binary_evaluate`: sources in chunks, one BFS each.

    A chunk of sources shares one layered product BFS over codes
    ``(local_source * n + node) * k + state``; the chunk size is bounded so
    the dense visited mask stays around 16 MB however large the graph is.
    """
    np = _load_numpy()
    if plan.is_empty_language:
        return frozenset()
    n, k = index.num_nodes, plan.num_states
    hi = n if source_hi is None else source_hi
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    fwd_offsets = [_np_view(o) for o in index.fwd_offsets]
    fwd_targets = [_np_view(t) for t in index.fwd_targets]
    is_final = np.fromiter(plan.is_final, dtype=bool, count=k)
    initials = np.fromiter(plan.initials, dtype=np.int64, count=len(plan.initials))

    result: set[tuple[int, int]] = set()
    expanded = 0
    scanned = 0
    chunk = max(1, min(1024, (16 << 20) // max(1, n * k)))
    for chunk_lo in range(source_lo, hi, chunk):
        sources = np.arange(chunk_lo, min(chunk_lo + chunk, hi), dtype=np.int64)
        c = int(sources.size)
        if plan.accepts_empty_word:
            result.update(zip(sources.tolist(), sources.tolist()))
        visited = np.zeros(c * n * k, dtype=bool)
        local = np.arange(c, dtype=np.int64)
        frontier = (
            (local[:, None] * n + sources[:, None]) * k + initials[None, :]
        ).reshape(-1)
        visited[frontier] = True
        while frontier.size:
            expanded += int(frontier.size)
            rest, layer_states = np.divmod(frontier, k)
            layer_locals, layer_nodes = np.divmod(rest, n)
            grown: list = []
            for state in np.unique(layer_states):
                moves = state_moves[state]
                if not moves:
                    continue
                mask = layer_states == state
                at_nodes = layer_nodes[mask]
                at_locals = layer_locals[mask]
                for symbol_pos, next_states in moves:
                    label_id = sym_labels[symbol_pos]
                    if label_id < 0:
                        continue
                    targets, counts, total = _np_gather(
                        fwd_offsets[label_id], fwd_targets[label_id], at_nodes, np
                    )
                    if not total:
                        continue
                    scanned += total
                    base = (np.repeat(at_locals, counts) * n + targets) * k
                    for target_state in next_states:
                        grown.append(base + target_state)
            if grown:
                fresh = np.unique(np.concatenate(grown))
                fresh = fresh[~visited[fresh]]
                visited[fresh] = True
                frontier = fresh
                accepting = fresh[is_final[fresh % k]]
                if accepting.size:
                    acc_locals, acc_nodes = np.divmod(accepting // k, n)
                    result.update(
                        zip(sources[acc_locals].tolist(), acc_nodes.tolist())
                    )
            else:
                frontier = local[:0]
    if stats is not None:
        stats.add(expanded, scanned)
    return frozenset(result)


# -- bidirectional pair search ------------------------------------------------


def pair_search_cost(index: GraphIndex, plan: CompiledPlan) -> tuple[int, int]:
    """Estimated first-layer costs ``(forward, backward)`` of a pair query.

    The forward estimate sums the CSR edge counts of the labels leaving the
    plan's initial states; the backward estimate sums the edge counts of the
    labels entering its final states.  Both read only the per-label degree
    stats the index already holds -- no graph walk.
    """
    counts = index.label_edge_counts()
    sym_labels = plan.bind_symbols(index.label_ids)

    def side(states, moves_of) -> int:
        total = 0
        for state in states:
            for symbol_pos, _ in moves_of[state]:
                label_id = sym_labels[symbol_pos]
                if label_id >= 0:
                    total += counts[label_id]
        return total

    return (
        side(plan.initials, plan.state_moves),
        side(plan.finals, plan.rstate_moves),
    )


def choose_pair_kernel(index: GraphIndex, plan: CompiledPlan) -> str:
    """``"bidirectional"`` or ``"forward"`` for one pair query.

    Delegates to the shared cost model
    (:meth:`repro.engine.costs.CostModel.choose_pair_strategy`), which owns
    the dispatch rule; this wrapper survives for callers that hold an index
    but no model.  Imported lazily -- the executor must stay importable
    before the costs module during package init.
    """
    from repro.engine.costs import CostModel

    return CostModel(index).choose_pair_strategy(plan)


def bidirectional_pair_selects(
    index: GraphIndex,
    plan: CompiledPlan,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """:func:`pair_selects` meeting in the middle.

    Two frontiers -- forward from ``(origin, initials)``, backward from
    ``(end, finals)`` -- expand in alternating layers; each step grows the
    side whose frontier has the smaller summed CSR degree (the per-label
    degree stats again, now per layer).  The query selects the pair iff the
    visited sets ever intersect; either frontier emptying first proves the
    negative, usually touching far fewer product pairs than the one-sided
    search on deep graphs.
    """
    if plan.is_empty_language:
        return False
    if origin_id == end_id and plan.accepts_empty_word:
        return True
    k = plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves, rstate_moves = plan.state_moves, plan.rstate_moves
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    bwd_offsets, bwd_targets = index.bwd_offsets, index.bwd_targets

    fwd_visited = {origin_id * k + initial for initial in plan.initials}
    bwd_visited = {end_id * k + final for final in plan.finals}
    fwd_frontier = list(fwd_visited)
    bwd_frontier = list(bwd_visited)

    def layer_degree(frontier, moves_of, offsets_of) -> int:
        total = 0
        for code in frontier:
            node, state = divmod(code, k)
            for symbol_pos, _ in moves_of[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = offsets_of[label_id]
                total += offsets[node + 1] - offsets[node]
        return total

    expanded = 0
    scanned = 0
    try:
        while fwd_frontier and bwd_frontier:
            forward_turn = layer_degree(
                fwd_frontier, state_moves, fwd_offsets
            ) <= layer_degree(bwd_frontier, rstate_moves, bwd_offsets)
            if forward_turn:
                frontier, fwd_frontier = fwd_frontier, []
                for code in frontier:
                    node, state = divmod(code, k)
                    expanded += 1
                    for symbol_pos, next_states in state_moves[state]:
                        label_id = sym_labels[symbol_pos]
                        if label_id < 0:
                            continue
                        offsets = fwd_offsets[label_id]
                        start, stop = offsets[node], offsets[node + 1]
                        if start == stop:
                            continue
                        scanned += stop - start
                        for target_node in fwd_targets[label_id][start:stop]:
                            base = target_node * k
                            for target_state in next_states:
                                target_code = base + target_state
                                if target_code in bwd_visited:
                                    return True
                                if target_code not in fwd_visited:
                                    fwd_visited.add(target_code)
                                    fwd_frontier.append(target_code)
            else:
                frontier, bwd_frontier = bwd_frontier, []
                for code in frontier:
                    node, state = divmod(code, k)
                    expanded += 1
                    for symbol_pos, pred_states in rstate_moves[state]:
                        label_id = sym_labels[symbol_pos]
                        if label_id < 0:
                            continue
                        offsets = bwd_offsets[label_id]
                        start, stop = offsets[node], offsets[node + 1]
                        if start == stop:
                            continue
                        scanned += stop - start
                        for pred_node in bwd_targets[label_id][start:stop]:
                            base = pred_node * k
                            for pred_state in pred_states:
                                pred_code = base + pred_state
                                if pred_code in fwd_visited:
                                    return True
                                if pred_code not in bwd_visited:
                                    bwd_visited.add(pred_code)
                                    bwd_frontier.append(pred_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)
