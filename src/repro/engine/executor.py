"""Product-BFS kernels over a :class:`GraphIndex` and a :class:`CompiledPlan`.

Every kernel works on the int-encoded product space: the pair ``(node v,
automaton state s)`` is the single int ``v * k + s`` (``k`` = number of plan
states), and the per-label CSR slices of the index replace hash-set
adjacency lookups.  The inner loop walks the popped state's *own* moves
(``plan.state_moves``), so its cost scales with the automaton's out-degree,
not with the alphabet.  This is the replacement for the dict/frozenset-based
construction in :mod:`repro.graphdb.product`, with identical semantics (the
parity tests in ``tests/engine`` pin the two against each other).

All kernels take and return *int node ids*; mapping to and from user-facing
node identifiers is the :class:`~repro.engine.engine.QueryEngine`'s job.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.automata.dfa import DFA
from repro.automata.kernel import TableAutomaton
from repro.automata.nfa import NFA
from repro.engine.index import GraphIndex
from repro.engine.plan import CompiledPlan
from repro.errors import GraphError
from repro.telemetry.metrics import Counter, MetricsRegistry


class KernelStats:
    """Mutable counters a kernel accumulates into (shared with the engine).

    The two counters are telemetry :class:`~repro.telemetry.metrics.Counter`
    instruments (registered as ``kernel_states_expanded_total`` /
    ``kernel_edges_scanned_total`` when a registry is supplied).  Kernels
    accumulate into locals and flush once per call through :meth:`add`,
    which takes the instruments' locks -- one locked add per kernel call,
    safe under the service layer's concurrent workers.  The int properties
    remain for reads and single-threaded resets (not atomic).
    """

    __slots__ = ("_states", "_edges")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            self._states = Counter("kernel_states_expanded_total")
            self._edges = Counter("kernel_edges_scanned_total")
        else:
            self._states = registry.counter(
                "kernel_states_expanded_total",
                help="Product pairs popped by the BFS kernels",
            )
            self._edges = registry.counter(
                "kernel_edges_scanned_total",
                help="CSR adjacency entries touched by the BFS kernels",
            )

    @property
    def states_expanded(self) -> int:
        return self._states.value

    @states_expanded.setter
    def states_expanded(self, value: int) -> None:
        self._states.value = value

    @property
    def edges_scanned(self) -> int:
        return self._edges.value

    @edges_scanned.setter
    def edges_scanned(self, value: int) -> None:
        self._edges.value = value

    def add(self, states: int, edges: int) -> None:
        """Atomically add one kernel call's work to both counters."""
        self._states.inc(states)
        self._edges.inc(edges)

    def mark(self) -> tuple[int, int]:
        """The current ``(states_expanded, edges_scanned)`` pair -- take one
        before and after a kernel call to attribute its work to a profile."""
        return self._states.value, self._edges.value


def evaluate_all(
    index: GraphIndex,
    plan: CompiledPlan,
    stats: KernelStats | None = None,
    *,
    depth_sizes: list[int] | None = None,
) -> frozenset[int]:
    """Int ids of all nodes the query selects (monadic semantics).

    One *backward* BFS over the product from every accepting pair computes
    the co-reachable set; a node is selected iff one of its initial pairs is
    co-reachable.  ``O(|E| * k + |V| * k)`` like the reference, but on a
    dense bitmap over int codes.

    ``depth_sizes``, when given, receives the number of product pairs
    expanded per BFS layer (layer 0 = the accepting seed pairs) -- the
    per-depth frontier profile telemetry attaches to query results.
    """
    if plan.is_empty_language:
        return frozenset()
    n, k = index.num_nodes, plan.num_states
    if plan.accepts_empty_word:
        # Every node trivially matches via the empty path.
        return frozenset(range(n))
    sym_labels = plan.bind_symbols(index.label_ids)
    rstate_moves = plan.rstate_moves
    bwd_offsets, bwd_targets = index.bwd_offsets, index.bwd_targets

    visited = bytearray(n * k)
    queue: deque[int] = deque()
    for final in plan.finals:
        for node in range(n):
            code = node * k + final
            visited[code] = 1
            queue.append(code)

    expanded = 0
    scanned = 0
    track = depth_sizes is not None
    level_left = 0
    if track and queue:
        level_left = len(queue)
        depth_sizes.append(level_left)
    while queue:
        code = queue.popleft()
        node, state = divmod(code, k)
        expanded += 1
        for symbol_pos, pred_states in rstate_moves[state]:
            label_id = sym_labels[symbol_pos]
            if label_id < 0:
                continue
            offsets = bwd_offsets[label_id]
            start, stop = offsets[node], offsets[node + 1]
            if start == stop:
                continue
            scanned += stop - start
            for pred_node in bwd_targets[label_id][start:stop]:
                base = pred_node * k
                for pred_state in pred_states:
                    pred_code = base + pred_state
                    if not visited[pred_code]:
                        visited[pred_code] = 1
                        queue.append(pred_code)
        if track:
            # After the last pop of a layer, the queue holds exactly the
            # next layer (FIFO BFS invariant) -- no per-push bookkeeping.
            level_left -= 1
            if not level_left:
                level_left = len(queue)
                if level_left:
                    depth_sizes.append(level_left)
    if stats is not None:
        stats.add(expanded, scanned)

    initials = plan.initials
    return frozenset(
        node for node in range(n) if any(visited[node * k + i] for i in initials)
    )


def selects(
    index: GraphIndex,
    plan: CompiledPlan,
    node_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """Whether the query selects the one given node (early-exit forward BFS)."""
    return any_selects(index, plan, (node_id,), stats)


def any_selects(
    index: GraphIndex,
    plan: CompiledPlan,
    node_ids: Iterable[int],
    stats: KernelStats | None = None,
) -> bool:
    """Whether the query selects at least one of the given nodes.

    Multi-source forward product BFS with an exit as soon as an accepting
    automaton state is reached -- the engine-side version of the
    intersection-emptiness test of Algorithm 1's merge guard.
    """
    starts = list(node_ids)
    if not starts or plan.is_empty_language:
        return False
    if plan.accepts_empty_word:
        return True
    k = plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    is_final = plan.is_final
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets

    # Sparse visited set (int-coded pairs): early exits usually touch a tiny
    # fraction of the product, so a dense |V|*k bitmap would cost more to
    # allocate than the whole search.
    visited: set[int] = set()
    queue: deque[int] = deque()
    for node in starts:
        for initial in plan.initials:
            code = node * k + initial
            if code not in visited:
                visited.add(code)
                queue.append(code)

    expanded = 0
    scanned = 0
    try:
        while queue:
            code = queue.popleft()
            node, state = divmod(code, k)
            expanded += 1
            for symbol_pos, next_states in state_moves[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for target_node in fwd_targets[label_id][start:stop]:
                    base = target_node * k
                    for target_state in next_states:
                        if is_final[target_state]:
                            return True
                        target_code = base + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            queue.append(target_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def _automaton_ends(automaton: DFA | NFA):
    """(initial states, final states) of an automaton; rejects epsilon NFAs."""
    if isinstance(automaton, DFA):
        return (automaton.initial,), automaton.final_states
    if automaton.has_epsilon_transitions:
        raise GraphError("query automata must be epsilon-free; determinize first")
    return tuple(automaton.initial_states), automaton.final_states


def lazy_any_selects(
    index: GraphIndex,
    automaton: DFA | NFA,
    node_ids: Iterable[int],
    stats: KernelStats | None = None,
) -> bool:
    """Uncompiled :func:`any_selects`: walk the automaton object directly.

    The learner's merge guard evaluates thousands of candidate automata
    exactly once each, so plan compilation (let alone caching) can never pay
    for itself there.  This kernel skips it entirely -- the automaton's own
    transition dicts drive the BFS while the graph side still runs on the
    CSR index.
    """
    initials, finals = _automaton_ends(automaton)
    if not finals:
        return False
    starts = list(node_ids)
    if not starts:
        return False
    if any(initial in finals for initial in initials):
        return True
    label_ids = index.label_ids
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    outgoing = automaton.outgoing

    visited: set[tuple[int, object]] = {
        (node, initial) for node in starts for initial in initials
    }
    queue: deque[tuple[int, object]] = deque(visited)
    expanded = 0
    scanned = 0
    try:
        while queue:
            node, state = queue.popleft()
            expanded += 1
            for symbol, target_state in outgoing(state):
                label_id = label_ids.get(symbol)
                if label_id is None:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                if target_state in finals:
                    return True
                for target_node in fwd_targets[label_id][start:stop]:
                    pair = (target_node, target_state)
                    if pair not in visited:
                        visited.add(pair)
                        queue.append(pair)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def table_any_selects(
    index: GraphIndex,
    view: TableAutomaton,
    node_ids: Iterable[int],
    stats: KernelStats | None = None,
    *,
    max_depth: int | None = None,
) -> bool:
    """:func:`lazy_any_selects` for kernel automata (all-int inner loop).

    ``view`` is a :class:`~repro.automata.kernel.TableDFA` or an in-place
    :class:`~repro.automata.kernel.MergeFold` hypothesis mid-merge: the
    walk reads the flat transition array directly (``find`` canonicalizes
    fold targets), the product pair ``(node, state)`` is one int code, and
    symbol ids are bound to graph label ids once per call.  This is the
    merge-guard hot path of the kernel-backed learner: no automaton object
    is compiled, copied or even touched beyond its arrays.

    ``max_depth`` bounds the accepted word's length: the BFS runs in
    word-length layers (first visit = shortest witness, so the pair dedup
    stays sound) and stops after ``max_depth`` of them.  This is how the
    interactive layer asks "does this candidate have an uncovered path of
    at most k symbols?" against the round's uncovered-words automaton.
    """
    trans, m, find, finals, initial = view.kernel_walk()
    if not finals:
        return False
    starts = list(node_ids)
    if not starts:
        return False
    if (finals >> initial) & 1:
        return True
    sym_labels = view.bind_labels(index.label_ids)
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    span = len(trans) // m if m else 1

    visited: set[int] = set()
    level: list[int] = []
    for node in starts:
        code = node * span + initial
        if code not in visited:
            visited.add(code)
            level.append(code)

    expanded = 0
    scanned = 0
    depth = 0
    try:
        while level and (max_depth is None or depth < max_depth):
            depth += 1
            next_level: list[int] = []
            for code in level:
                node, state = divmod(code, span)
                expanded += 1
                base = state * m
                for position in range(m):
                    target_state = trans[base + position]
                    if target_state < 0:
                        continue
                    label_id = sym_labels[position]
                    if label_id < 0:
                        continue
                    offsets = fwd_offsets[label_id]
                    start, stop = offsets[node], offsets[node + 1]
                    if start == stop:
                        continue
                    scanned += stop - start
                    if find is not None:
                        target_state = find(target_state)
                    if (finals >> target_state) & 1:
                        return True
                    for target_node in fwd_targets[label_id][start:stop]:
                        target_code = target_node * span + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            next_level.append(target_code)
            level = next_level
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def table_evaluate_all(
    index: GraphIndex,
    view: TableAutomaton,
    stats: KernelStats | None = None,
    *,
    max_depth: int | None = None,
    depth_sizes: list[int] | None = None,
) -> frozenset[int]:
    """:func:`evaluate_all` for kernel automata (no plan compilation).

    One *backward* product BFS from every accepting pair computes, for all
    nodes at once, whether the node realizes an accepted word -- the batched
    counterpart of running :func:`table_any_selects` per node.  ``max_depth``
    bounds the accepted word length (BFS layers run in word-length order),
    which is how the interactive layer's one-walk-per-round batched
    k-informativeness check cuts the product at ``k`` symbols.
    """
    trans, m, find, finals, initial = view.kernel_walk()
    if find is not None:
        raise GraphError(
            "table_evaluate_all needs a committed table; call MergeFold.to_table() first"
        )
    if not finals:
        return frozenset()
    n = index.num_nodes
    span = len(trans) // m if m else 1
    if (finals >> initial) & 1:
        # Every node trivially matches via the empty path.
        return frozenset(range(n))
    sym_labels = view.bind_labels(index.label_ids)
    bwd_offsets, bwd_targets = index.bwd_offsets, index.bwd_targets

    # Reverse automaton adjacency: state -> [(symbol position, [pred states])].
    rmoves: list[dict[int, list[int]]] = [{} for _ in range(span)]
    for state in range(span):
        base = state * m
        for position in range(m):
            target = trans[base + position]
            if target >= 0 and sym_labels[position] >= 0:
                rmoves[target].setdefault(position, []).append(state)
    rstate_moves = [list(moves.items()) for moves in rmoves]

    visited = bytearray(n * span)
    frontier: list[int] = []
    for final_state in range(span):
        if not (finals >> final_state) & 1:
            continue
        for node in range(n):
            code = node * span + final_state
            visited[code] = 1
            frontier.append(code)

    depth = 0
    expanded = 0
    scanned = 0
    if depth_sizes is not None and frontier:
        depth_sizes.append(len(frontier))
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[int] = []
        for code in frontier:
            node, state = divmod(code, span)
            expanded += 1
            for position, pred_states in rstate_moves[state]:
                label_id = sym_labels[position]
                offsets = bwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for pred_node in bwd_targets[label_id][start:stop]:
                    base = pred_node * span
                    for pred_state in pred_states:
                        pred_code = base + pred_state
                        if not visited[pred_code]:
                            visited[pred_code] = 1
                            next_frontier.append(pred_code)
        frontier = next_frontier
        if depth_sizes is not None and frontier:
            depth_sizes.append(len(frontier))
    if stats is not None:
        stats.add(expanded, scanned)

    return frozenset(
        node for node in range(n) if visited[node * span + initial]
    )


def table_pair_selects(
    index: GraphIndex,
    view: TableAutomaton,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """:func:`lazy_pair_selects` for kernel automata (all-int inner loop)."""
    trans, m, find, finals, initial = view.kernel_walk()
    if not finals:
        return False
    if origin_id == end_id and (finals >> initial) & 1:
        return True
    sym_labels = view.bind_labels(index.label_ids)
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    span = len(trans) // m if m else 1

    visited: set[int] = {origin_id * span + initial}
    queue: deque[int] = deque(visited)
    expanded = 0
    scanned = 0
    try:
        while queue:
            code = queue.popleft()
            node, state = divmod(code, span)
            expanded += 1
            base = state * m
            for position in range(m):
                target_state = trans[base + position]
                if target_state < 0:
                    continue
                label_id = sym_labels[position]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                if find is not None:
                    target_state = find(target_state)
                is_final = (finals >> target_state) & 1
                for target_node in fwd_targets[label_id][start:stop]:
                    if is_final and target_node == end_id:
                        return True
                    target_code = target_node * span + target_state
                    if target_code not in visited:
                        visited.add(target_code)
                        queue.append(target_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def lazy_pair_selects(
    index: GraphIndex,
    automaton: DFA | NFA,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """Uncompiled :func:`pair_selects` for one-shot candidate automata."""
    initials, finals = _automaton_ends(automaton)
    if not finals:
        return False
    if origin_id == end_id and any(initial in finals for initial in initials):
        return True
    label_ids = index.label_ids
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets
    outgoing = automaton.outgoing

    visited: set[tuple[int, object]] = {(origin_id, initial) for initial in initials}
    queue: deque[tuple[int, object]] = deque(visited)
    expanded = 0
    scanned = 0
    try:
        while queue:
            node, state = queue.popleft()
            expanded += 1
            for symbol, target_state in outgoing(state):
                label_id = label_ids.get(symbol)
                if label_id is None:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                is_final = target_state in finals
                for target_node in fwd_targets[label_id][start:stop]:
                    if is_final and target_node == end_id:
                        return True
                    pair = (target_node, target_state)
                    if pair not in visited:
                        visited.add(pair)
                        queue.append(pair)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)


def binary_evaluate(
    index: GraphIndex, plan: CompiledPlan, stats: KernelStats | None = None
) -> frozenset[tuple[int, int]]:
    """All selected ``(source id, end id)`` pairs (binary semantics).

    One forward product BFS per source node, as in the reference.
    """
    if plan.is_empty_language:
        return frozenset()
    n, k = index.num_nodes, plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    is_final = plan.is_final
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets

    result: set[tuple[int, int]] = set()
    expanded = 0
    scanned = 0
    for source in range(n):
        visited: set[int] = set()
        queue: deque[int] = deque()
        for initial in plan.initials:
            code = source * k + initial
            if code not in visited:
                visited.add(code)
                queue.append(code)
        if plan.accepts_empty_word:
            result.add((source, source))
        while queue:
            code = queue.popleft()
            node, state = divmod(code, k)
            expanded += 1
            for symbol_pos, next_states in state_moves[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for target_node in fwd_targets[label_id][start:stop]:
                    base = target_node * k
                    for target_state in next_states:
                        target_code = base + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            queue.append(target_code)
                            if is_final[target_state]:
                                result.add((source, target_node))
    if stats is not None:
        stats.add(expanded, scanned)
    return frozenset(result)


def pair_selects(
    index: GraphIndex,
    plan: CompiledPlan,
    origin_id: int,
    end_id: int,
    stats: KernelStats | None = None,
) -> bool:
    """Whether the query selects the pair ``(origin, end)`` (early exit)."""
    if plan.is_empty_language:
        return False
    if origin_id == end_id and plan.accepts_empty_word:
        return True
    k = plan.num_states
    sym_labels = plan.bind_symbols(index.label_ids)
    state_moves = plan.state_moves
    is_final = plan.is_final
    fwd_offsets, fwd_targets = index.fwd_offsets, index.fwd_targets

    visited: set[int] = set()
    queue: deque[int] = deque()
    for initial in plan.initials:
        code = origin_id * k + initial
        if code not in visited:
            visited.add(code)
            queue.append(code)

    expanded = 0
    scanned = 0
    try:
        while queue:
            code = queue.popleft()
            node, state = divmod(code, k)
            expanded += 1
            for symbol_pos, next_states in state_moves[state]:
                label_id = sym_labels[symbol_pos]
                if label_id < 0:
                    continue
                offsets = fwd_offsets[label_id]
                start, stop = offsets[node], offsets[node + 1]
                if start == stop:
                    continue
                scanned += stop - start
                for target_node in fwd_targets[label_id][start:stop]:
                    base = target_node * k
                    for target_state in next_states:
                        if target_node == end_id and is_final[target_state]:
                            return True
                        target_code = base + target_state
                        if target_code not in visited:
                            visited.add(target_code)
                            queue.append(target_code)
        return False
    finally:
        if stats is not None:
            stats.add(expanded, scanned)
