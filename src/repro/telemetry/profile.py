"""Per-query execution profiles: where one evaluation spent its time.

A :class:`QueryProfile` is the engine's answer to "where did this query
spend its time": the compile-vs-index-vs-walk split, which caches answered
(plan cache, result cache), which index version served the walk, the
kernel work done (states expanded, edges scanned) and the per-depth
frontier sizes of the product BFS.  The engine records one per evaluation
when profiling is enabled; :meth:`repro.api.Workspace.query` attaches it to
the :class:`~repro.api.QueryResult` so it travels with the answer
(``result.to_dict()["profile"]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryProfile:
    """A JSON-safe breakdown of one engine evaluation.

    ``cache`` is the result-cache outcome (``"hit"``, ``"miss"`` or
    ``"ephemeral"`` for uncached throwaway walks); ``plan_cache`` the plan
    cache outcome (``"hit"``, ``"miss"`` or ``None`` when no plan was
    compiled at all).  The seconds fields are ``perf_counter`` deltas;
    ``depth_sizes[d]`` is the number of product states expanded at BFS
    depth ``d`` (empty on cache hits -- no walk happened).
    """

    operation: str = "evaluate"
    plan: str | None = None
    index_version: int | None = None
    index_uid: int | None = None
    cache: str = "miss"
    plan_cache: str | None = None
    compile_seconds: float = 0.0
    index_seconds: float = 0.0
    walk_seconds: float = 0.0
    total_seconds: float = 0.0
    states_expanded: int = 0
    edges_scanned: int = 0
    depth_sizes: list[int] = field(default_factory=list)
    selected: int | None = None

    def to_dict(self) -> dict:
        """A JSON-safe snapshot (stable key order; lists stay lists)."""
        return {
            "operation": self.operation,
            "plan": self.plan,
            "index_version": self.index_version,
            "index_uid": self.index_uid,
            "cache": self.cache,
            "plan_cache": self.plan_cache,
            "compile_seconds": self.compile_seconds,
            "index_seconds": self.index_seconds,
            "walk_seconds": self.walk_seconds,
            "total_seconds": self.total_seconds,
            "states_expanded": self.states_expanded,
            "edges_scanned": self.edges_scanned,
            "depth_sizes": list(self.depth_sizes),
            "selected": self.selected,
        }


def fingerprint_token(fingerprint: object) -> str:
    """A short printable token for a plan fingerprint span attribute.

    Fingerprints are arbitrary hashable structural values (tuples, raw
    automaton bytes); traces want something short and comparable *within a
    process*, so this hashes to 12 hex digits rather than serializing the
    structure.
    """
    return format(hash(fingerprint) & 0xFFFFFFFFFFFF, "012x")
