"""Trace-file readers: tail, summarize, aggregate cache economics.

These functions power ``repro trace`` and the trace-driven half of
``repro stats``.  They read the JSONL records written by
:class:`~repro.telemetry.tracing.TraceSink` (schema documented there) and
never import the engine, so they work on trace files from any process.
"""

from __future__ import annotations

import json
import os
from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import TelemetryError


def read_trace(path: str | os.PathLike) -> Iterator[dict]:
    """Yield every record of a JSONL trace file, in file order.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.TelemetryError` with its line number.
    """
    try:
        handle = open(os.fspath(path), "r", encoding="utf-8")
    except OSError as error:
        raise TelemetryError(f"cannot read trace file: {error}") from error
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryError(
                    f"malformed trace record at {path}:{lineno}: {error}"
                ) from error
            if not isinstance(record, dict):
                raise TelemetryError(
                    f"malformed trace record at {path}:{lineno}: expected an object"
                )
            yield record


def tail_trace(path: str | os.PathLike, n: int = 20) -> list[dict]:
    """The last ``n`` records of a trace file."""
    if n < 1:
        raise TelemetryError("tail length must be at least 1")
    return list(deque(read_trace(path), maxlen=n))


def build_trace_tree(records: Iterable[dict], trace_id: str) -> dict:
    """Reassemble one distributed trace into a nested span tree.

    Filters ``records`` to those stamped with ``trace_id`` and links them
    by their cross-process ``span``/``parent`` refs (``origin:span_id``,
    written whenever a :class:`~repro.telemetry.tracing.TraceContext` was
    attached).  Records whose parent is absent from the selection -- the
    client's root span, or an orphan from a rotated-away file -- become
    roots.  Powers ``repro trace --id``.

    Returns a JSON-safe dict::

        {"trace_id": ..., "spans": N, "tenants": [...],
         "roots": [{"name", "ref", "start", "seconds", "tenant", "attrs",
                    "children": [...]}, ...]}
    """
    if not trace_id:
        raise TelemetryError("trace id must be a non-empty string")
    nodes: dict[str, dict] = {}
    anonymous: list[dict] = []
    order = 0
    for record in records:
        if record.get("trace") != trace_id:
            continue
        node = {
            "name": record.get("name", "?"),
            "ref": record.get("span"),
            "parent": record.get("parent"),
            "start": record.get("start", 0.0),
            "seconds": record.get("seconds", 0.0),
            "tenant": record.get("tenant"),
            "attrs": record.get("attrs") or {},
            "order": order,
            "children": [],
        }
        order += 1
        ref = node["ref"]
        if isinstance(ref, str) and ref:
            nodes[ref] = node
        else:
            anonymous.append(node)
    roots: list[dict] = []
    for node in list(nodes.values()) + anonymous:
        parent = node.pop("parent")
        if isinstance(parent, str) and parent in nodes and nodes[parent] is not node:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    # Spans close innermost-first, so file order is reversed relative to the
    # call order; arrival order within one process still breaks the tie when
    # clocks from different processes do not compare.
    def _sort(children: list[dict]) -> None:
        children.sort(key=lambda n: (n["start"], n["order"]))
        for child in children:
            _sort(child["children"])

    _sort(roots)
    tenants = set()
    count = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        node.pop("order", None)
        count += 1
        if node["tenant"]:
            tenants.add(node["tenant"])
        stack.extend(node["children"])
    return {
        "trace_id": trace_id,
        "spans": count,
        "tenants": sorted(tenants),
        "roots": roots,
    }


def summarize_slow(records: Iterable[dict]) -> dict:
    """Aggregate slow-query log entries (the daemon's rotating JSONL).

    Each entry carries ``elapsed``, ``tenant``, ``expr``, ``snapshot`` and
    optionally ``trace`` -- see ``QueryService``.  Powers ``repro slow``.
    """
    entries = 0
    total = 0.0
    slowest: dict | None = None
    tenants: dict[str, int] = {}
    expressions: dict[str, int] = {}
    snapshots: dict[str, int] = {}
    for record in records:
        entries += 1
        elapsed = float(record.get("elapsed", 0.0))
        total += elapsed
        if slowest is None or elapsed > float(slowest.get("elapsed", 0.0)):
            slowest = record
        tenant = record.get("tenant")
        if tenant:
            tenants[tenant] = tenants.get(tenant, 0) + 1
        expr = record.get("expr")
        if expr:
            expressions[expr] = expressions.get(expr, 0) + 1
        snapshot = record.get("snapshot")
        if snapshot:
            snapshots[snapshot] = snapshots.get(snapshot, 0) + 1
    top = sorted(expressions.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    return {
        "entries": entries,
        "mean_elapsed": total / entries if entries else 0.0,
        "max_elapsed": float(slowest.get("elapsed", 0.0)) if slowest else 0.0,
        "slowest": (
            {
                "expr": slowest.get("expr"),
                "tenant": slowest.get("tenant"),
                "snapshot": slowest.get("snapshot"),
                "elapsed": slowest.get("elapsed"),
                "trace": slowest.get("trace"),
            }
            if slowest
            else None
        ),
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "snapshots": {name: snapshots[name] for name in sorted(snapshots)},
        "top_expressions": [{"expr": expr, "count": n} for expr, n in top],
    }


def summarize_trace(records: Iterable[dict]) -> dict:
    """Aggregate span records into per-name timings and cache economics.

    Returns a JSON-safe dict::

        {"events": N,
         "total_seconds": wall-clock covered (max start+seconds - min start),
         "spans": {name: {"count", "total_seconds", "mean_seconds",
                          "max_seconds"}},
         "cache": {"hit": n, "miss": n, "ephemeral": n, "hit_rate": r},
         "plan_cache": {"hit": n, "miss": n, "hit_rate": r}}

    Cache economics come from the ``cache``/``plan_cache`` span attributes
    the engine stamps on every evaluation span.
    """
    events = 0
    first_start = None
    last_end = 0.0
    spans: dict[str, dict] = {}
    cache = {"hit": 0, "miss": 0, "ephemeral": 0}
    plan_cache = {"hit": 0, "miss": 0}
    for record in records:
        events += 1
        name = record.get("name", "?")
        seconds = float(record.get("seconds", 0.0))
        start = float(record.get("start", 0.0))
        if first_start is None or start < first_start:
            first_start = start
        last_end = max(last_end, start + seconds)
        entry = spans.setdefault(
            name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += seconds
        entry["max_seconds"] = max(entry["max_seconds"], seconds)
        attrs = record.get("attrs") or {}
        outcome = attrs.get("cache")
        if outcome in cache:
            cache[outcome] += 1
        plan_outcome = attrs.get("plan_cache")
        if plan_outcome in plan_cache:
            plan_cache[plan_outcome] += 1
    for entry in spans.values():
        entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
    answered = cache["hit"] + cache["miss"]
    cache["hit_rate"] = cache["hit"] / answered if answered else 1.0
    compiled = plan_cache["hit"] + plan_cache["miss"]
    plan_cache["hit_rate"] = plan_cache["hit"] / compiled if compiled else 1.0
    return {
        "events": events,
        "total_seconds": (last_end - first_start) if first_start is not None else 0.0,
        "spans": {name: spans[name] for name in sorted(spans)},
        "cache": cache,
        "plan_cache": plan_cache,
    }
