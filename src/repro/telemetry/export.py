"""Trace-file readers: tail, summarize, aggregate cache economics.

These functions power ``repro trace`` and the trace-driven half of
``repro stats``.  They read the JSONL records written by
:class:`~repro.telemetry.tracing.TraceSink` (schema documented there) and
never import the engine, so they work on trace files from any process.
"""

from __future__ import annotations

import json
import os
from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import TelemetryError


def read_trace(path: str | os.PathLike) -> Iterator[dict]:
    """Yield every record of a JSONL trace file, in file order.

    Blank lines are skipped; a malformed line raises
    :class:`~repro.errors.TelemetryError` with its line number.
    """
    try:
        handle = open(os.fspath(path), "r", encoding="utf-8")
    except OSError as error:
        raise TelemetryError(f"cannot read trace file: {error}") from error
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryError(
                    f"malformed trace record at {path}:{lineno}: {error}"
                ) from error
            if not isinstance(record, dict):
                raise TelemetryError(
                    f"malformed trace record at {path}:{lineno}: expected an object"
                )
            yield record


def tail_trace(path: str | os.PathLike, n: int = 20) -> list[dict]:
    """The last ``n`` records of a trace file."""
    if n < 1:
        raise TelemetryError("tail length must be at least 1")
    return list(deque(read_trace(path), maxlen=n))


def summarize_trace(records: Iterable[dict]) -> dict:
    """Aggregate span records into per-name timings and cache economics.

    Returns a JSON-safe dict::

        {"events": N,
         "total_seconds": wall-clock covered (max start+seconds - min start),
         "spans": {name: {"count", "total_seconds", "mean_seconds",
                          "max_seconds"}},
         "cache": {"hit": n, "miss": n, "ephemeral": n, "hit_rate": r},
         "plan_cache": {"hit": n, "miss": n, "hit_rate": r}}

    Cache economics come from the ``cache``/``plan_cache`` span attributes
    the engine stamps on every evaluation span.
    """
    events = 0
    first_start = None
    last_end = 0.0
    spans: dict[str, dict] = {}
    cache = {"hit": 0, "miss": 0, "ephemeral": 0}
    plan_cache = {"hit": 0, "miss": 0}
    for record in records:
        events += 1
        name = record.get("name", "?")
        seconds = float(record.get("seconds", 0.0))
        start = float(record.get("start", 0.0))
        if first_start is None or start < first_start:
            first_start = start
        last_end = max(last_end, start + seconds)
        entry = spans.setdefault(
            name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += seconds
        entry["max_seconds"] = max(entry["max_seconds"], seconds)
        attrs = record.get("attrs") or {}
        outcome = attrs.get("cache")
        if outcome in cache:
            cache[outcome] += 1
        plan_outcome = attrs.get("plan_cache")
        if plan_outcome in plan_cache:
            plan_cache[plan_outcome] += 1
    for entry in spans.values():
        entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
    answered = cache["hit"] + cache["miss"]
    cache["hit_rate"] = cache["hit"] / answered if answered else 1.0
    compiled = plan_cache["hit"] + plan_cache["miss"]
    plan_cache["hit_rate"] = plan_cache["hit"] / compiled if compiled else 1.0
    return {
        "events": events,
        "total_seconds": (last_end - first_start) if first_start is not None else 0.0,
        "spans": {name: spans[name] for name in sorted(spans)},
        "cache": cache,
        "plan_cache": plan_cache,
    }
