"""Structured tracing: nestable spans, a bounded buffer, a rotating JSONL sink.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans nest --
the tracer keeps a stack, so each finished span records its parent id and
depth -- and are timed with ``time.perf_counter`` (monotonic; consistent
with ``Result.elapsed`` everywhere in the library).  Finished spans land in
an in-memory ring buffer and, when a :class:`TraceSink` is attached, as one
JSON object per line in a trace file with size-based rotation.

Record schema (one JSONL object per finished span)::

    {"name": "engine.evaluate", "span_id": 7, "parent_id": 3, "depth": 1,
     "start": 0.000132, "seconds": 0.00251, "attrs": {"cache": "miss", ...}}

``start`` is seconds since the tracer was created (perf_counter deltas, not
wall clock), so records order and subtract cleanly within one process.
"""

from __future__ import annotations

import json
import os
from collections import deque
from time import perf_counter

from repro.errors import TelemetryError

#: Default sink rotation threshold (bytes) and number of rotated files kept.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024
DEFAULT_KEEP = 3


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: Singleton no-op span: ``telemetry.span(...)`` returns this when disabled,
#: so the instrumented code path is one truthiness check plus two no-op calls.
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of work (use as a context manager)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth", "start", "seconds", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.depth = 0
        self.start = 0.0
        self.seconds = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (chains; last write wins)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, seconds={self.seconds:.6f})"


class TraceSink:
    """An append-only JSONL file with size-based rotation.

    When the file exceeds ``max_bytes`` after a write, it rotates:
    ``trace.jsonl`` -> ``trace.jsonl.1`` -> ... -> ``trace.jsonl.<keep>``
    (the oldest is dropped).  Writes are line-buffered JSON, one record per
    line, compact separators.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
    ) -> None:
        if max_bytes <= 0:
            raise TelemetryError("trace rotation threshold must be positive")
        if keep < 1:
            raise TelemetryError("must keep at least one rotated trace file")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.keep = keep
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = self._file.tell()

    def write(self, record: dict) -> None:
        """Append one record as a JSON line (rotating first if needed)."""
        line = json.dumps(record, separators=(",", ":"), default=str)
        if self._size and self._size + len(line) + 1 > self.max_bytes:
            self._rotate()
        self._file.write(line + "\n")
        self._size += len(line) + 1

    def _rotate(self) -> None:
        self._file.close()
        for i in range(self.keep - 1, 0, -1):
            older = f"{self.path}.{i}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:
        return f"TraceSink({self.path!r}, size={self._size})"


class Tracer:
    """Creates spans, tracks nesting, buffers and sinks finished records.

    ``events`` is a bounded ring of the most recent finished span records
    (dicts, newest last) -- always available for in-process inspection even
    without a sink.
    """

    def __init__(self, sink: TraceSink | None = None, *, buffer: int = 2048) -> None:
        self.sink = sink
        self.events: deque[dict] = deque(maxlen=buffer)
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = perf_counter()

    def span(self, name: str, **attrs) -> Span:
        """A new (not yet started) span; enter it with ``with``."""
        return Span(self, name, attrs)

    # -- span lifecycle (called by Span.__enter__/__exit__) -------------------

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
            span.depth = len(self._stack)
        self._stack.append(span)
        span.start = perf_counter() - self._epoch

    def _close(self, span: Span) -> None:
        span.seconds = perf_counter() - self._epoch - span.start
        # Tolerate mispaired exits (generators, exceptions mid-stack): pop
        # back to this span rather than corrupting the whole stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        record = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "start": round(span.start, 9),
            "seconds": round(span.seconds, 9),
            "attrs": span.attrs,
        }
        self.events.append(record)
        if self.sink is not None:
            self.sink.write(record)

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def __repr__(self) -> str:
        return f"Tracer(events={len(self.events)}, open={len(self._stack)})"
