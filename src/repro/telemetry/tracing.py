"""Structured tracing: nestable spans, a bounded buffer, a rotating JSONL sink.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans nest --
the tracer keeps a per-thread stack, so each finished span records its
parent id and depth even when many server threads share one tracer -- and
are timed with ``time.perf_counter`` (monotonic; consistent with
``Result.elapsed`` everywhere in the library).  Finished spans land in an
in-memory ring buffer and, when a :class:`TraceSink` is attached, as one
JSON object per line in a trace file with size-based rotation.

Record schema (one JSONL object per finished span)::

    {"name": "engine.evaluate", "span_id": 7, "parent_id": 3, "depth": 1,
     "start": 0.000132, "seconds": 0.00251, "attrs": {"cache": "miss", ...}}

``start`` is seconds since the tracer was created (perf_counter deltas, not
wall clock), so records order and subtract cleanly within one process.

Distributed traces add a :class:`TraceContext` -- a trace id plus the
globally-unique ref of the parent span, minted client-side and carried on
the wire and into shard-worker payloads.  While a context is attached
(:meth:`Tracer.context`, per thread), every finished record additionally
carries::

    {"trace": "9f2c...", "span": "a1b2c3d4:7", "parent": "e5f6a7b8:3",
     "tenant": "acme"}

``span``/``parent`` are ``origin:span_id`` refs (``origin`` is a random
per-tracer token), so records from different processes join into one tree
without coordinating span-id allocation; a thread's *root* span parents
onto the context's ``parent_span`` ref from the remote caller.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import uuid
from collections import deque
from dataclasses import dataclass, replace
from time import perf_counter

from repro.errors import TelemetryError

#: Default sink rotation threshold (bytes) and number of rotated files kept.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024
DEFAULT_KEEP = 3


@dataclass(frozen=True)
class TraceContext:
    """The cross-process identity of one request's trace.

    ``trace_id`` names the whole request; ``parent_span`` is the
    ``origin:span_id`` ref of the caller's open span (None for a root
    context); ``tenant`` stamps every record for per-tenant attribution.
    The wire form (:meth:`to_dict`) rides the protocol's ``trace`` field
    and the shard-worker task payloads unchanged.
    """

    trace_id: str
    parent_span: str | None = None
    tenant: str | None = None

    @classmethod
    def mint(cls, *, tenant: str | None = None) -> "TraceContext":
        """A fresh root context with a random 128-bit trace id."""
        return cls(trace_id=uuid.uuid4().hex, tenant=tenant)

    def child(self, parent_span: str | None) -> "TraceContext":
        """The same trace, re-parented onto ``parent_span`` for a callee."""
        return replace(self, parent_span=parent_span)

    def to_dict(self) -> dict:
        payload: dict = {"trace_id": self.trace_id}
        if self.parent_span is not None:
            payload["parent_span"] = self.parent_span
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Validate a wire ``trace`` payload back into a context."""
        if not isinstance(payload, dict):
            raise TelemetryError(
                f"trace context must be an object, got {type(payload).__name__}"
            )
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise TelemetryError(
                f"trace context needs a non-empty trace_id string, got {trace_id!r}"
            )
        parent_span = payload.get("parent_span")
        if parent_span is not None and not isinstance(parent_span, str):
            raise TelemetryError(
                f"trace context parent_span must be a span ref string, got {parent_span!r}"
            )
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise TelemetryError(
                f"trace context tenant must be a string, got {tenant!r}"
            )
        return cls(trace_id=trace_id, parent_span=parent_span, tenant=tenant)


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: Singleton no-op span: ``telemetry.span(...)`` returns this when disabled,
#: so the instrumented code path is one truthiness check plus two no-op calls.
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of work (use as a context manager)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth", "start", "seconds", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.depth = 0
        self.start = 0.0
        self.seconds = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (chains; last write wins)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._close(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, seconds={self.seconds:.6f})"


class TraceSink:
    """An append-only JSONL file with size-based rotation.

    When the file exceeds ``max_bytes`` after a write, it rotates:
    ``trace.jsonl`` -> ``trace.jsonl.1`` -> ... -> ``trace.jsonl.<keep>``
    (the oldest is dropped).  Writes are line-buffered JSON, one record per
    line, compact separators, serialized by a lock so one sink can be
    shared by many tracers (the serving daemon shares one sink across its
    per-dataset engines).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
    ) -> None:
        if max_bytes <= 0:
            raise TelemetryError("trace rotation threshold must be positive")
        if keep < 1:
            raise TelemetryError("must keep at least one rotated trace file")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.keep = keep
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = self._file.tell()
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        """Append one record as a JSON line (rotating first if needed)."""
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._size and self._size + len(line) + 1 > self.max_bytes:
                self._rotate()
            self._file.write(line + "\n")
            self._size += len(line) + 1

    def _rotate(self) -> None:
        self._file.close()
        for i in range(self.keep - 1, 0, -1):
            older = f"{self.path}.{i}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:
        return f"TraceSink({self.path!r}, size={self._size})"


class Tracer:
    """Creates spans, tracks nesting, buffers and sinks finished records.

    ``events`` is a bounded ring of the most recent finished span records
    (dicts, newest last) -- always available for in-process inspection even
    without a sink.

    The open-span stack and the attached :class:`TraceContext` are both
    thread-local: the thread-per-connection server shares one tracer
    across requests, and concurrent spans must neither corrupt each
    other's parent/depth attribution nor leak another request's trace id.
    Span ids come from one atomic process-wide counter, so records from
    all threads stay unique; ``origin`` qualifies them into globally
    unique ``origin:span_id`` refs for cross-process assembly.
    """

    def __init__(self, sink: TraceSink | None = None, *, buffer: int = 2048) -> None:
        self.sink = sink
        self.events: deque[dict] = deque(maxlen=buffer)
        self.origin = uuid.uuid4().hex[:8]
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._epoch = perf_counter()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        """A new (not yet started) span; enter it with ``with``."""
        return Span(self, name, attrs)

    # -- distributed context ---------------------------------------------------

    def context(self, ctx: TraceContext | None):
        """Attach a trace context to this thread for the ``with`` body.

        While attached, finished spans carry ``trace``/``span``/``parent``
        (and ``tenant``) fields, and a root span parents onto the
        context's ``parent_span`` ref.  ``None`` detaches (useful for
        uniform call sites).  Contexts nest: the previous one is restored
        on exit.
        """
        return _ContextScope(self, ctx)

    def current_context(self) -> TraceContext | None:
        """The context attached to this thread, or None."""
        return getattr(self._local, "context", None)

    def span_ref(self, span: Span) -> str:
        """The globally unique ``origin:span_id`` ref of a span."""
        return f"{self.origin}:{span.span_id}"

    def current_ref(self) -> str | None:
        """The ref of this thread's innermost open span, or None."""
        stack = self._stack
        return self.span_ref(stack[-1]) if stack else None

    def ingest(self, record: dict) -> None:
        """Adopt a finished span record produced elsewhere (a shard worker).

        The record lands in the ring and the sink verbatim -- it already
        carries its own refs -- so worker spans merge into the
        coordinator's trace file without the workers owning a sink.
        """
        self.events.append(record)
        if self.sink is not None:
            self.sink.write(record)

    # -- span lifecycle (called by Span.__enter__/__exit__) -------------------

    def _open(self, span: Span) -> None:
        span.span_id = next(self._ids)
        stack = self._stack
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = len(stack)
        stack.append(span)
        span.start = perf_counter() - self._epoch

    def _close(self, span: Span) -> None:
        span.seconds = perf_counter() - self._epoch - span.start
        # Tolerate mispaired exits (generators, exceptions mid-stack): pop
        # back to this span rather than corrupting the whole stack.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        record = {
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "depth": span.depth,
            "start": round(span.start, 9),
            "seconds": round(span.seconds, 9),
            "attrs": span.attrs,
        }
        ctx = self.current_context()
        if ctx is not None:
            record["trace"] = ctx.trace_id
            record["span"] = self.span_ref(span)
            if span.parent_id:
                record["parent"] = f"{self.origin}:{span.parent_id}"
            elif ctx.parent_span is not None:
                record["parent"] = ctx.parent_span
            if ctx.tenant is not None:
                record["tenant"] = ctx.tenant
        self.events.append(record)
        if self.sink is not None:
            self.sink.write(record)

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def __repr__(self) -> str:
        return f"Tracer(events={len(self.events)}, open={len(self._stack)})"


class _ContextScope:
    """Attach/restore one thread's trace context (``Tracer.context``)."""

    __slots__ = ("_tracer", "_ctx", "_previous")

    def __init__(self, tracer: Tracer, ctx: TraceContext | None) -> None:
        self._tracer = tracer
        self._ctx = ctx
        self._previous: TraceContext | None = None

    def __enter__(self) -> TraceContext | None:
        self._previous = getattr(self._tracer._local, "context", None)
        self._tracer._local.context = self._ctx
        return self._ctx

    def __exit__(self, *exc_info) -> bool:
        self._tracer._local.context = self._previous
        return False
