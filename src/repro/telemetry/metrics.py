"""The unified metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` per :class:`~repro.telemetry.Telemetry` owns
every instrument of one engine.  Instruments are get-or-create by name, so
independent layers (engine, kernel, caches, storage, interactive sessions)
can share a counter without coordinating, and the whole registry renders to
either a JSON-safe snapshot or the Prometheus text exposition format.

Instruments are deliberately plain Python objects with one int/float of
state each: the hot kernels increment them through ``EngineStats``/
``KernelStats``, which keeps the disabled-telemetry cost of the engine at
one locked add per kernel call.

Thread safety: the mutating entry points (``Counter.inc``, ``Gauge.inc`` /
``dec`` / ``set``, ``Histogram.observe``, and the registry's get-or-create)
hold a per-instrument lock, so a served engine can be driven from many
worker threads without losing increments.  Direct assignment to ``.value``
(what the ``stats.x = 0`` reset idiom and the ``stats.x += 1`` property
sugar compile to) is *not* atomic and stays reserved for single-threaded
use; concurrent writers must go through the locked methods.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Sequence

from repro.errors import TelemetryError

#: Default histogram boundaries for durations in seconds (upper bounds,
#: Prometheus ``le`` convention; the +Inf bucket is implicit).
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _check_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
        raise TelemetryError(
            f"invalid metric name {name!r}: use [A-Za-z0-9_:] (Prometheus-safe)"
        )
    if name[0].isdigit():
        raise TelemetryError(f"invalid metric name {name!r}: cannot start with a digit")
    return name


def _series_name(name: str, labels: dict[str, str] | None) -> str:
    """The full series key ``name{k="v",...}`` (labels sorted, values quoted).

    Label values may be any string without ``"``/``\\``/newlines; label
    *names* follow the metric-name charset.  The base name alone remains a
    distinct series, so a family can mix labeled and unlabeled use only if
    callers are consistent -- same rule Prometheus clients enforce.
    """
    _check_name(name)
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if any(ch in value for ch in '"\\\n'):
            raise TelemetryError(f"invalid label value {value!r} for {name!r}")
        parts.append(f'{_check_name(key)}="{value}"')
    return f"{name}{{{','.join(parts)}}}"


def _family(name: str) -> str:
    """The metric family of a series key (the part before any ``{``)."""
    return name.split("{", 1)[0]


class Counter:
    """A monotonically increasing integer (resettable only via ``value``).

    ``labels`` turns the instrument into one series of a labeled family:
    the stored name becomes ``name{k="v",...}`` and the registry keys and
    renders it per series while emitting HELP/TYPE once per family.
    """

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None  # noqa: A002
    ) -> None:
        self.name = _series_name(name, labels)
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter; thread-safe."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depths, cache sizes, ...)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Observations bucketed against fixed upper boundaries.

    ``buckets`` are strictly increasing upper bounds; an implicit +Inf
    bucket catches everything above the last one.  ``counts[i]`` is the
    number of observations ``<= buckets[i]`` *exclusively within* that
    bucket (non-cumulative internally; the Prometheus renderer emits the
    cumulative form the exposition format requires).
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",  # noqa: A002
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} needs strictly increasing, non-empty buckets"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation; thread-safe."""
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts (Prometheus ``le`` semantics)."""
        total = 0
        out = []
        for n in self.counts:
            total += n
            out.append(total)
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6f})"


class MetricsRegistry:
    """Get-or-create instrument store with snapshot and Prometheus export.

    ``callback`` registers a *computed gauge*: a zero-argument callable
    sampled at export time (how the engine exposes live cache hit counts
    without double bookkeeping).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._callbacks: dict[str, tuple[Callable[[], float], str]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            if name in self._callbacks:
                raise TelemetryError(f"metric {name!r} already registered as a callback")
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None  # noqa: A002
    ) -> Counter:
        """The counter of that name (and label set), created on first use."""
        key = _series_name(name, labels)
        return self._get_or_create(key, Counter, lambda: Counter(name, help, labels))

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        """The gauge of that name, created on first use."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",  # noqa: A002
    ) -> Histogram:
        """The histogram of that name, created on first use."""
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets, help))

    def callback(self, name: str, fn: Callable[[], float], help: str = "") -> None:  # noqa: A002
        """Register (or replace) a gauge computed at export time."""
        with self._lock:
            if name in self._metrics:
                raise TelemetryError(f"metric {name!r} already registered as an instrument")
            self._callbacks[_check_name(name)] = (fn, help)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._callbacks

    def snapshot(self) -> dict[str, object]:
        """Every instrument's current value as one JSON-safe dict.

        Counters and gauges map to their value; histograms map to
        ``{"count", "sum", "buckets": [[le, cumulative_count], ...]}``.
        """
        with self._lock:
            metrics = dict(self._metrics)
            callbacks = dict(self._callbacks)
        out: dict[str, object] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        [le, n]
                        for le, n in zip(
                            [*metric.buckets, float("inf")], metric.cumulative_counts()
                        )
                    ],
                }
            else:
                out[name] = metric.value
        for name in sorted(callbacks):
            fn, _ = callbacks[name]
            out[name] = fn()
        return out

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            metrics = dict(self._metrics)
            callbacks = dict(self._callbacks)
        lines: list[str] = []
        seen_families: set[str] = set()
        # Sort by (family, series) so a labeled family's series stay
        # contiguous under their one HELP/TYPE header.
        for name in sorted(metrics, key=lambda n: (_family(n), n)):
            metric = metrics[name]
            family = _family(name)
            fresh_family = family not in seen_families
            seen_families.add(family)
            if metric.help and fresh_family:
                lines.append(f"# HELP {family} {metric.help}")
            if isinstance(metric, Counter):
                if fresh_family:
                    lines.append(f"# TYPE {family} counter")
                lines.append(f"{name} {metric.value}")
            elif isinstance(metric, Gauge):
                if fresh_family:
                    lines.append(f"# TYPE {family} gauge")
                lines.append(f"{name} {_fmt(metric.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = metric.cumulative_counts()
                for le, n in zip(metric.buckets, cumulative):
                    lines.append(f'{name}_bucket{{le="{_fmt(le)}"}} {n}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{name}_sum {_fmt(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
        for name in sorted(callbacks):
            fn, help_text = callbacks[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(fn())}")
        return "\n".join(lines) + "\n" if lines else ""

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(instruments={len(self._metrics)}, "
            f"callbacks={len(self._callbacks)})"
        )


def _fmt(value: float) -> str:
    """Render a float without trailing noise (ints stay ints)."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
