"""Observability for the repro engine: metrics, tracing, per-query profiles.

One :class:`Telemetry` object bundles the three concerns an engine owns:

- a :class:`~repro.telemetry.metrics.MetricsRegistry` (always on -- the
  engine's counters live here, behind the compatible ``EngineStats``
  properties; exportable as a snapshot dict or Prometheus text),
- a :class:`~repro.telemetry.tracing.Tracer` with an optional rotating
  JSONL :class:`~repro.telemetry.tracing.TraceSink` (on only when asked:
  ``Telemetry(trace_path=...)`` or ``Telemetry(enabled=True)``),
- per-query :class:`~repro.telemetry.profile.QueryProfile` capture
  (``Telemetry(profile=True)``).

Disabled is the default and costs near nothing: ``telemetry.span(...)``
returns a shared no-op span and ``telemetry.active`` is False, so the
engine's hot paths skip every capture branch.

    from repro.telemetry import Telemetry

    tel = Telemetry(trace_path="run.jsonl", profile=True)
    ws = repro.Workspace(graph, telemetry=tel)
    ws.query("a.b*")
    print(tel.registry.render_prometheus())
"""

from __future__ import annotations

import os

import contextlib

from repro.telemetry.export import (
    build_trace_tree,
    read_trace,
    summarize_slow,
    summarize_trace,
    tail_trace,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profile import QueryProfile, fingerprint_token
from repro.telemetry.tracing import (
    DEFAULT_KEEP,
    DEFAULT_MAX_BYTES,
    NOOP_SPAN,
    Span,
    TraceContext,
    TraceSink,
    Tracer,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "TraceContext",
    "TraceSink",
    "Span",
    "QueryProfile",
    "read_trace",
    "tail_trace",
    "summarize_trace",
    "summarize_slow",
    "build_trace_tree",
    "fingerprint_token",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_KEEP",
    "NOOP_SPAN",
]


class Telemetry:
    """The telemetry bundle one engine (or workspace) owns.

    Parameters
    ----------
    enabled:
        Turn tracing on without a sink (spans land in the in-memory ring
        buffer only).  Implied by ``trace_path``.
    trace_path:
        Write finished spans to this JSONL file (rotating at
        ``trace_max_bytes``, keeping ``trace_keep`` rotated files).
    profile:
        Capture a :class:`QueryProfile` per engine evaluation
        (``engine.take_profile()`` / ``QueryResult.profile``).
    registry:
        Share a prebuilt :class:`MetricsRegistry` (one registry can serve
        several engines); a fresh one is created by default.
    sink:
        Borrow an already-open :class:`TraceSink` instead of opening one
        from ``trace_path`` (implies ``enabled``).  The sink stays owned
        by its creator: :meth:`close` detaches but does not close it.
        The serving daemon uses this to merge every dataset engine's
        spans into one rotating trace file.
    buffer_events:
        Size of the in-memory ring of recent span records.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        trace_path: str | os.PathLike | None = None,
        profile: bool = False,
        registry: MetricsRegistry | None = None,
        sink: TraceSink | None = None,
        trace_max_bytes: int = DEFAULT_MAX_BYTES,
        trace_keep: int = DEFAULT_KEEP,
        buffer_events: int = 2048,
    ) -> None:
        if sink is not None and trace_path is not None:
            raise ValueError("pass either sink or trace_path, not both")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiling = bool(profile)
        self.enabled = bool(enabled) or trace_path is not None or sink is not None
        self._owns_sink = trace_path is not None
        self.sink = (
            TraceSink(trace_path, max_bytes=trace_max_bytes, keep=trace_keep)
            if trace_path is not None
            else sink
        )
        self.tracer = Tracer(self.sink, buffer=buffer_events) if self.enabled else None

    @property
    def active(self) -> bool:
        """Whether any capture (tracing or profiling) is on."""
        return self.enabled or self.profiling

    def span(self, name: str, **attrs):
        """A span context manager; the shared no-op span when tracing is off."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    def context(self, ctx: TraceContext | None):
        """Attach a :class:`TraceContext` to this thread for the ``with`` body.

        A no-op context manager when tracing is off or ``ctx`` is None, so
        call sites stay uniform: ``with telemetry.context(maybe_ctx): ...``.
        """
        if self.tracer is None or ctx is None:
            return contextlib.nullcontext(ctx)
        return self.tracer.context(ctx)

    def ensure_context(self, *, tenant: str | None = None):
        """Attach a fresh root context unless one is already attached.

        Locally traced runs (``repro query --trace``) get a trace id this
        way, so their records join ``repro trace --id`` like remote ones.
        """
        if self.tracer is None or self.tracer.current_context() is not None:
            return contextlib.nullcontext(self.current_context())
        return self.tracer.context(TraceContext.mint(tenant=tenant))

    def current_context(self) -> TraceContext | None:
        """This thread's attached trace context, or None."""
        return self.tracer.current_context() if self.tracer is not None else None

    def current_ref(self) -> str | None:
        """The ref of this thread's innermost open span, or None."""
        return self.tracer.current_ref() if self.tracer is not None else None

    def ingest(self, record: dict) -> None:
        """Adopt a span record produced elsewhere (no-op when tracing is off)."""
        if self.tracer is not None:
            self.tracer.ingest(record)

    def events(self) -> list[dict]:
        """The in-memory ring of recent finished span records (oldest first)."""
        return list(self.tracer.events) if self.tracer is not None else []

    def flush(self) -> None:
        """Flush the trace sink (no-op without one)."""
        if self.tracer is not None:
            self.tracer.flush()

    def close(self) -> None:
        """Flush and close the trace sink (the telemetry object stays usable
        for metrics; further traced spans only land in the ring buffer).
        A borrowed sink is detached, not closed -- its owner closes it."""
        if self.sink is not None:
            if self._owns_sink:
                self.sink.close()
            else:
                self.sink.flush()
            if self.tracer is not None:
                self.tracer.sink = None
            self.sink = None

    def __repr__(self) -> str:
        mode = []
        if self.enabled:
            mode.append("tracing")
        if self.profiling:
            mode.append("profiling")
        return f"Telemetry({'+'.join(mode) or 'disabled'}, registry={self.registry!r})"
