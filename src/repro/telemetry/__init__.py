"""Observability for the repro engine: metrics, tracing, per-query profiles.

One :class:`Telemetry` object bundles the three concerns an engine owns:

- a :class:`~repro.telemetry.metrics.MetricsRegistry` (always on -- the
  engine's counters live here, behind the compatible ``EngineStats``
  properties; exportable as a snapshot dict or Prometheus text),
- a :class:`~repro.telemetry.tracing.Tracer` with an optional rotating
  JSONL :class:`~repro.telemetry.tracing.TraceSink` (on only when asked:
  ``Telemetry(trace_path=...)`` or ``Telemetry(enabled=True)``),
- per-query :class:`~repro.telemetry.profile.QueryProfile` capture
  (``Telemetry(profile=True)``).

Disabled is the default and costs near nothing: ``telemetry.span(...)``
returns a shared no-op span and ``telemetry.active`` is False, so the
engine's hot paths skip every capture branch.

    from repro.telemetry import Telemetry

    tel = Telemetry(trace_path="run.jsonl", profile=True)
    ws = repro.Workspace(graph, telemetry=tel)
    ws.query("a.b*")
    print(tel.registry.render_prometheus())
"""

from __future__ import annotations

import os

from repro.telemetry.export import read_trace, summarize_trace, tail_trace
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profile import QueryProfile, fingerprint_token
from repro.telemetry.tracing import (
    DEFAULT_KEEP,
    DEFAULT_MAX_BYTES,
    NOOP_SPAN,
    Span,
    TraceSink,
    Tracer,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "TraceSink",
    "Span",
    "QueryProfile",
    "read_trace",
    "tail_trace",
    "summarize_trace",
    "fingerprint_token",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_KEEP",
    "NOOP_SPAN",
]


class Telemetry:
    """The telemetry bundle one engine (or workspace) owns.

    Parameters
    ----------
    enabled:
        Turn tracing on without a sink (spans land in the in-memory ring
        buffer only).  Implied by ``trace_path``.
    trace_path:
        Write finished spans to this JSONL file (rotating at
        ``trace_max_bytes``, keeping ``trace_keep`` rotated files).
    profile:
        Capture a :class:`QueryProfile` per engine evaluation
        (``engine.take_profile()`` / ``QueryResult.profile``).
    registry:
        Share a prebuilt :class:`MetricsRegistry` (one registry can serve
        several engines); a fresh one is created by default.
    buffer_events:
        Size of the in-memory ring of recent span records.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        trace_path: str | os.PathLike | None = None,
        profile: bool = False,
        registry: MetricsRegistry | None = None,
        trace_max_bytes: int = DEFAULT_MAX_BYTES,
        trace_keep: int = DEFAULT_KEEP,
        buffer_events: int = 2048,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profiling = bool(profile)
        self.enabled = bool(enabled) or trace_path is not None
        self.sink = (
            TraceSink(trace_path, max_bytes=trace_max_bytes, keep=trace_keep)
            if trace_path is not None
            else None
        )
        self.tracer = Tracer(self.sink, buffer=buffer_events) if self.enabled else None

    @property
    def active(self) -> bool:
        """Whether any capture (tracing or profiling) is on."""
        return self.enabled or self.profiling

    def span(self, name: str, **attrs):
        """A span context manager; the shared no-op span when tracing is off."""
        if self.tracer is None:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    def events(self) -> list[dict]:
        """The in-memory ring of recent finished span records (oldest first)."""
        return list(self.tracer.events) if self.tracer is not None else []

    def flush(self) -> None:
        """Flush the trace sink (no-op without one)."""
        if self.tracer is not None:
            self.tracer.flush()

    def close(self) -> None:
        """Flush and close the trace sink (the telemetry object stays usable
        for metrics; further traced spans only land in the ring buffer)."""
        if self.sink is not None:
            self.sink.close()
            if self.tracer is not None:
                self.tracer.sink = None
            self.sink = None

    def __repr__(self) -> str:
        mode = []
        if self.enabled:
            mode.append("tracing")
        if self.profiling:
            mode.append("profiling")
        return f"Telemetry({'+'.join(mode) or 'disabled'}, registry={self.registry!r})"
