"""The static-scenario experiment driver (Figures 11 and 12).

Setup, following Section 5.2: given a graph and a goal query, draw random
positive examples among the nodes the goal selects and random negative
examples among the rest, hand the sample to the learner, and measure the F1
score of the learned query (as a classifier for the goal) and the learning
time.  The sweep over "percentage of labeled nodes" produces the series
plotted in Figures 11 (F1) and 12 (time, seconds).
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import LearningError, SerializationError
from repro.evaluation.metrics import f1_score
from repro.evaluation.workloads import Workload
from repro.graphdb.graph import GraphDB, Node
from repro.learning.learner import LearnerResult, learn_with_dynamic_k
from repro.learning.baselines import learn_scp_disjunction
from repro.learning.sample import Sample
from repro.queries.path_query import PathQuery

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.api
    from repro.api.config import ExperimentConfig


@dataclass(frozen=True)
class StaticPoint:
    """One measurement of the static sweep."""

    labeled_fraction: float
    positives: int
    negatives: int
    f1: float
    learning_seconds: float
    learned_expression: str | None
    k: int


@dataclass
class StaticExperimentResult:
    """The full series of one workload's static sweep.

    Implements the uniform :class:`repro.api.Result` protocol: ``ok``,
    ``query``, ``elapsed`` and a JSON-safe ``to_dict``/``from_dict`` pair.
    """

    workload_name: str
    goal_expression: str
    goal_selectivity: float
    points: list[StaticPoint] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """Result protocol: True iff the sweep produced at least one point."""
        return bool(self.points)

    @property
    def query(self) -> str | None:
        """Result protocol: the final learned expression of the sweep, if any."""
        for point in reversed(self.points):
            if point.learned_expression is not None:
                return point.learned_expression
        return None

    def f1_series(self) -> list[tuple[float, float]]:
        """(labeled fraction, F1) pairs -- the Figure 11 series."""
        return [(point.labeled_fraction, point.f1) for point in self.points]

    def time_series(self) -> list[tuple[float, float]]:
        """(labeled fraction, seconds) pairs -- the Figure 12 series."""
        return [(point.labeled_fraction, point.learning_seconds) for point in self.points]

    def labels_needed_for_f1(self, threshold: float = 1.0) -> float | None:
        """The smallest labeled fraction reaching the given F1, if any.

        This is the "labels needed for F1 score = 1 without interactions"
        column of Table 2.
        """
        for point in self.points:
            if point.f1 >= threshold:
                return point.labeled_fraction
        return None

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "StaticExperimentResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "query": self.query,
            "workload_name": self.workload_name,
            "goal_expression": self.goal_expression,
            "goal_selectivity": self.goal_selectivity,
            "points": [asdict(point) for point in self.points],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StaticExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                workload_name=payload["workload_name"],
                goal_expression=payload["goal_expression"],
                goal_selectivity=payload["goal_selectivity"],
                points=[StaticPoint(**point) for point in payload.get("points", [])],
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed StaticExperimentResult payload: {error}"
            ) from error


def draw_sample(
    graph: GraphDB,
    goal: PathQuery,
    *,
    labeled_fraction: float,
    rng: random.Random,
    positive_share: float | None = None,
    engine: QueryEngine | None = None,
) -> Sample:
    """Draw a random sample of the requested size, labeled by the goal query.

    ``positive_share`` fixes the proportion of positives among the labeled
    nodes; by default the labels follow the goal query's own selectivity
    (labeling uniformly random nodes), but at least one positive and one
    negative are always included when the goal makes both possible.
    """
    if not 0.0 < labeled_fraction <= 1.0:
        raise LearningError("labeled_fraction must be in (0, 1]")
    selected = goal.evaluate(graph, engine=engine or get_default_engine())
    unselected = graph.nodes - selected
    total = max(2, int(round(labeled_fraction * graph.node_count())))
    if positive_share is None:
        positive_share = len(selected) / graph.node_count() if graph.node_count() else 0.0
    positive_count = int(round(total * positive_share))
    if selected:
        positive_count = min(max(positive_count, 1), len(selected))
    else:
        positive_count = 0
    negative_count = min(total - positive_count, len(unselected))
    if unselected and negative_count == 0:
        negative_count = 1

    positives: list[Node] = (
        rng.sample(sorted(selected, key=repr), positive_count) if positive_count else []
    )
    negatives: list[Node] = (
        rng.sample(sorted(unselected, key=repr), negative_count) if negative_count else []
    )
    return Sample(positives, negatives)


def run_static_experiment(
    workload: Workload,
    *,
    labeled_fractions: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.07, 0.10, 0.15),
    seed: int = 0,
    k_start: int = 2,
    k_max: int = 4,
    use_generalization: bool = True,
    engine: QueryEngine | None = None,
    config: "ExperimentConfig | None" = None,
) -> StaticExperimentResult:
    """Run the static sweep of Section 5.2 for one workload.

    ``use_generalization=False`` replaces the learner with the
    disjunction-of-SCPs baseline (the A1 ablation).

    ``engine`` is the query engine used throughout the sweep: sampling, F1
    scoring *and* the learner's internal merge-guard/positives checks all run
    on it (the shared default if omitted), so per-engine cache stats account
    for the whole experiment.  ``config`` (an
    :class:`repro.api.ExperimentConfig`) overrides the loose keyword
    arguments when given; :meth:`repro.api.Workspace.run_experiment` is the
    preferred entry point.

    .. deprecated:: 1.1
        Calling this with loose keyword arguments is kept as a compatibility
        shim; prefer :meth:`repro.api.Workspace.run_experiment` with an
        :class:`repro.api.ExperimentConfig`.
    """
    if config is not None:
        labeled_fractions = config.labeled_fractions
        seed = config.seed
        k_start = config.k_start
        k_max = config.k_max
        use_generalization = config.use_generalization
    rng = random.Random(seed)
    engine = engine or get_default_engine()
    graph, goal = workload.graph, workload.query
    # Warm the CSR index up front so the per-point timings measure learning,
    # not the one-off index build.
    engine.index_for(graph)
    sweep_started = time.perf_counter()
    result = StaticExperimentResult(
        workload_name=workload.name,
        goal_expression=goal.expression,
        goal_selectivity=workload.query.selectivity(workload.graph, engine=engine),
    )
    for fraction in labeled_fractions:
        sample = draw_sample(
            graph, goal, labeled_fraction=fraction, rng=rng, engine=engine
        )
        started = time.perf_counter()
        learn_result: LearnerResult
        if use_generalization:
            learn_result = learn_with_dynamic_k(
                graph, sample, k_start=k_start, k_max=k_max, engine=engine
            )
        else:
            learn_result = learn_scp_disjunction(graph, sample, k=k_max, engine=engine)
        elapsed = time.perf_counter() - started
        # Score the best-effort hypothesis: a strict null answer would show up
        # as F1 = 0 and hide the gradual convergence the paper's plots show.
        score = f1_score(learn_result.best_effort_query, goal, graph, engine=engine)
        result.points.append(
            StaticPoint(
                labeled_fraction=fraction,
                positives=len(sample.positives),
                negatives=len(sample.negatives),
                f1=score,
                learning_seconds=elapsed,
                learned_expression=(
                    None if learn_result.is_null else learn_result.query.expression
                ),
                k=learn_result.k,
            )
        )
    result.elapsed = time.perf_counter() - sweep_started
    return result
