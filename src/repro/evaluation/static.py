"""The static-scenario experiment driver (Figures 11 and 12).

Setup, following Section 5.2: given a graph and a goal query, draw random
positive examples among the nodes the goal selects and random negative
examples among the rest, hand the sample to the learner, and measure the F1
score of the learned query (as a classifier for the goal) and the learning
time.  The sweep over "percentage of labeled nodes" produces the series
plotted in Figures 11 (F1) and 12 (time, seconds).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import LearningError
from repro.evaluation.metrics import f1_score
from repro.evaluation.workloads import Workload
from repro.graphdb.graph import GraphDB, Node
from repro.learning.learner import LearnerResult, learn_with_dynamic_k
from repro.learning.baselines import learn_scp_disjunction
from repro.learning.sample import Sample
from repro.queries.path_query import PathQuery


@dataclass(frozen=True)
class StaticPoint:
    """One measurement of the static sweep."""

    labeled_fraction: float
    positives: int
    negatives: int
    f1: float
    learning_seconds: float
    learned_expression: str | None
    k: int


@dataclass
class StaticExperimentResult:
    """The full series of one workload's static sweep."""

    workload_name: str
    goal_expression: str
    goal_selectivity: float
    points: list[StaticPoint] = field(default_factory=list)

    def f1_series(self) -> list[tuple[float, float]]:
        """(labeled fraction, F1) pairs -- the Figure 11 series."""
        return [(point.labeled_fraction, point.f1) for point in self.points]

    def time_series(self) -> list[tuple[float, float]]:
        """(labeled fraction, seconds) pairs -- the Figure 12 series."""
        return [(point.labeled_fraction, point.learning_seconds) for point in self.points]

    def labels_needed_for_f1(self, threshold: float = 1.0) -> float | None:
        """The smallest labeled fraction reaching the given F1, if any.

        This is the "labels needed for F1 score = 1 without interactions"
        column of Table 2.
        """
        for point in self.points:
            if point.f1 >= threshold:
                return point.labeled_fraction
        return None


def draw_sample(
    graph: GraphDB,
    goal: PathQuery,
    *,
    labeled_fraction: float,
    rng: random.Random,
    positive_share: float | None = None,
    engine: QueryEngine | None = None,
) -> Sample:
    """Draw a random sample of the requested size, labeled by the goal query.

    ``positive_share`` fixes the proportion of positives among the labeled
    nodes; by default the labels follow the goal query's own selectivity
    (labeling uniformly random nodes), but at least one positive and one
    negative are always included when the goal makes both possible.
    """
    if not 0.0 < labeled_fraction <= 1.0:
        raise LearningError("labeled_fraction must be in (0, 1]")
    selected = goal.evaluate(graph, engine=engine or get_default_engine())
    unselected = graph.nodes - selected
    total = max(2, int(round(labeled_fraction * graph.node_count())))
    if positive_share is None:
        positive_share = len(selected) / graph.node_count() if graph.node_count() else 0.0
    positive_count = int(round(total * positive_share))
    if selected:
        positive_count = min(max(positive_count, 1), len(selected))
    else:
        positive_count = 0
    negative_count = min(total - positive_count, len(unselected))
    if unselected and negative_count == 0:
        negative_count = 1

    positives: list[Node] = (
        rng.sample(sorted(selected, key=repr), positive_count) if positive_count else []
    )
    negatives: list[Node] = (
        rng.sample(sorted(unselected, key=repr), negative_count) if negative_count else []
    )
    return Sample(positives, negatives)


def run_static_experiment(
    workload: Workload,
    *,
    labeled_fractions: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.07, 0.10, 0.15),
    seed: int = 0,
    k_start: int = 2,
    k_max: int = 4,
    use_generalization: bool = True,
    engine: QueryEngine | None = None,
) -> StaticExperimentResult:
    """Run the static sweep of Section 5.2 for one workload.

    ``use_generalization=False`` replaces the learner with the
    disjunction-of-SCPs baseline (the A1 ablation).

    ``engine`` is the query engine used for the sweep's sampling and F1
    scoring (the shared default if omitted).  The learner's own internal
    checks always run on the shared default engine, so pass a custom engine
    for cache sizing/stats of the scoring path only -- its index is warmed
    once and the goal query's node set is a result-cache hit across every
    labeled fraction.
    """
    rng = random.Random(seed)
    engine = engine or get_default_engine()
    graph, goal = workload.graph, workload.query
    # Warm the CSR index up front so the per-point timings measure learning,
    # not the one-off index build.
    engine.index_for(graph)
    result = StaticExperimentResult(
        workload_name=workload.name,
        goal_expression=goal.expression,
        goal_selectivity=workload.selectivity,
    )
    for fraction in labeled_fractions:
        sample = draw_sample(
            graph, goal, labeled_fraction=fraction, rng=rng, engine=engine
        )
        started = time.perf_counter()
        learn_result: LearnerResult
        if use_generalization:
            learn_result = learn_with_dynamic_k(graph, sample, k_start=k_start, k_max=k_max)
        else:
            learn_result = learn_scp_disjunction(graph, sample, k=k_max)
        elapsed = time.perf_counter() - started
        # Score the best-effort hypothesis: a strict null answer would show up
        # as F1 = 0 and hide the gradual convergence the paper's plots show.
        score = f1_score(learn_result.best_effort_query, goal, graph, engine=engine)
        result.points.append(
            StaticPoint(
                labeled_fraction=fraction,
                positives=len(sample.positives),
                negatives=len(sample.negatives),
                f1=score,
                learning_seconds=elapsed,
                learned_expression=(
                    None if learn_result.is_null else learn_result.query.expression
                ),
                k=learn_result.k,
            )
        )
    return result
