"""Classification metrics for learned queries.

Section 5.2: "We consider the learned query as a binary classifier and we
measure the F1 score w.r.t. the goal query."  The positive class is the set
of nodes the goal query selects; the prediction is the set the learned query
selects; precision, recall and F1 follow the usual definitions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.engine.engine import QueryEngine, get_default_engine
from repro.graphdb.graph import GraphDB, Node
from repro.queries.path_query import PathQuery


@dataclass(frozen=True)
class ClassificationScores:
    """Precision / recall / F1 of a predicted node set against a reference set."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of predicted nodes that are actually selected by the goal."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """Fraction of goal-selected nodes that the prediction recovers."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        """The harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def accuracy(self) -> float:
        """Fraction of nodes classified correctly (selected or not)."""
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        if total == 0:
            return 1.0
        return (self.true_positives + self.true_negatives) / total


def compare_node_sets(
    predicted: Iterable[Node],
    reference: Iterable[Node],
    universe: Iterable[Node],
) -> ClassificationScores:
    """Score a predicted node set against a reference set over a node universe."""
    predicted_set = set(predicted)
    reference_set = set(reference)
    universe_set = set(universe)
    true_positives = len(predicted_set & reference_set)
    false_positives = len(predicted_set - reference_set)
    false_negatives = len(reference_set - predicted_set)
    true_negatives = len(universe_set - predicted_set - reference_set)
    return ClassificationScores(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        true_negatives=true_negatives,
    )


def score_query(
    learned: PathQuery | None,
    goal: PathQuery,
    graph: GraphDB,
    *,
    engine: QueryEngine | None = None,
) -> ClassificationScores:
    """Score a learned query against the goal query on one graph.

    A null (abstained) learned query is scored as the empty prediction, which
    is how the static experiments account for runs where the learner had too
    few examples.  Both node sets are computed through the query engine, so
    the goal's (fixed) reference set is a result-cache hit after the first
    scoring round on a given graph.
    """
    engine = engine or get_default_engine()
    reference = goal.evaluate(graph, engine=engine)
    predicted = learned.evaluate(graph, engine=engine) if learned is not None else frozenset()
    return compare_node_sets(predicted, reference, graph.nodes)


def f1_score(
    learned: PathQuery | None,
    goal: PathQuery,
    graph: GraphDB,
    *,
    engine: QueryEngine | None = None,
) -> float:
    """Shortcut for ``score_query(...).f1``."""
    return score_query(learned, goal, graph, engine=engine).f1
