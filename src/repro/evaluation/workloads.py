"""The experimental workloads: queries and the graphs they run on.

*Biological workload* (Table 1).  The paper uses six real-life queries from
Koschmieder & Leser on the AliBaba graph, with structures ``b.A.A*``,
``C.C*.a.A.A*``, ``C.E``, ``I.I.I*``, ``A.A.A*.I.I.I*`` and ``A.A.A*`` where
capital letters are disjunctions of up to 10 (overlapping) symbols, and
selectivities between 0.03% and 22%.  We reproduce the same six structural
shapes over the AliBaba-like synthetic graph's label classes
(:data:`repro.datasets.alibaba.ALIBABA_LABEL_CLASSES`).

*Synthetic workload* (Section 5.1).  Three queries syn1-syn3 of shape
``A.B*.C`` (disjunctions of up to 10 possibly-overlapping symbols) whose
selectivities are, regardless of graph size, roughly 1%, 15% and 40%; run on
scale-free Zipfian graphs of 10k, 20k and 30k nodes with 3x edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.alibaba import ALIBABA_LABEL_CLASSES, generate_alibaba_like
from repro.datasets.synthetic import default_alphabet, scale_free_graph
from repro.graphdb.graph import GraphDB
from repro.queries.path_query import PathQuery
from repro.regex.ast import Regex, concat, disjunction_of_symbols, star, symbol


@dataclass(frozen=True)
class Workload:
    """A named goal query attached to the graph it is evaluated on."""

    name: str
    query: PathQuery
    graph: GraphDB
    description: str = ""

    @property
    def selectivity(self) -> float:
        """The fraction of graph nodes the goal query selects."""
        return self.query.selectivity(self.graph)


# -- biological queries (Table 1) ----------------------------------------------


def _class_expr(class_name: str) -> Regex:
    """The disjunction expression of one of the AliBaba label classes."""
    return disjunction_of_symbols(ALIBABA_LABEL_CLASSES[class_name])


def biological_query_expressions() -> dict[str, Regex]:
    """The six Table 1 query structures over the AliBaba-like label classes."""
    a_class = _class_expr("A")
    c_class = _class_expr("C")
    e_class = _class_expr("E")
    i_class = _class_expr("I")
    single_a = symbol(ALIBABA_LABEL_CLASSES["a"][0])
    single_b = symbol(ALIBABA_LABEL_CLASSES["b"][0])
    return {
        # bio1 = b . A . A*
        "bio1": concat(single_b, a_class, star(a_class)),
        # bio2 = C . C* . a . A . A*
        "bio2": concat(c_class, star(c_class), single_a, a_class, star(a_class)),
        # bio3 = C . E
        "bio3": concat(c_class, e_class),
        # bio4 = I . I . I*
        "bio4": concat(i_class, i_class, star(i_class)),
        # bio5 = A . A . A* . I . I . I*
        "bio5": concat(a_class, a_class, star(a_class), i_class, i_class, star(i_class)),
        # bio6 = A . A . A*
        "bio6": concat(a_class, a_class, star(a_class)),
    }


def biological_queries(graph: GraphDB | None = None) -> dict[str, PathQuery]:
    """The bio1-bio6 queries, compiled over the AliBaba-like alphabet."""
    alphabet = graph.alphabet if graph is not None else None
    queries: dict[str, PathQuery] = {}
    for name, expr in biological_query_expressions().items():
        queries[name] = PathQuery.parse(expr, alphabet) if alphabet else PathQuery.parse(expr)
    return queries


def biological_workloads(
    *,
    node_count: int = 3000,
    edge_count: int = 8000,
    seed: int = 7,
) -> list[Workload]:
    """The biological workload: bio1-bio6 on one AliBaba-like graph."""
    graph = generate_alibaba_like(node_count=node_count, edge_count=edge_count, seed=seed)
    queries = biological_queries(graph)
    structures = {
        "bio1": "b.A.A*",
        "bio2": "C.C*.a.A.A*",
        "bio3": "C.E",
        "bio4": "I.I.I*",
        "bio5": "A.A.A*.I.I.I*",
        "bio6": "A.A.A*",
    }
    return [
        Workload(name=name, query=query, graph=graph, description=structures[name])
        for name, query in queries.items()
    ]


# -- synthetic queries syn1-syn3 -------------------------------------------------


def synthetic_query_expressions(
    alphabet_size: int = 20,
) -> dict[str, Regex]:
    """Three ``A.B*.C`` queries over the default synthetic alphabet.

    The disjunction classes are chosen (with overlaps, as in the paper) so
    that syn1 is the most selective and syn3 the least: because the label
    distribution is Zipfian over the sorted alphabet, classes built from
    rare (high-index) labels select few nodes and classes built from
    frequent (low-index) labels select many.
    """
    labels = default_alphabet(alphabet_size)

    def pick(indices: list[int]) -> list[str]:
        return [labels[i % len(labels)] for i in indices]

    # syn1: rare labels everywhere -> low selectivity (about 1%).
    syn1 = concat(
        disjunction_of_symbols(pick([14, 15, 16])),
        star(disjunction_of_symbols(pick([12, 13, 17]))),
        disjunction_of_symbols(pick([18, 19])),
    )
    # syn2: mid-frequency labels -> medium selectivity (about 15%).
    syn2 = concat(
        disjunction_of_symbols(pick([4, 5, 6, 7])),
        star(disjunction_of_symbols(pick([6, 8, 9]))),
        disjunction_of_symbols(pick([10, 11, 12])),
    )
    # syn3: frequent labels -> high selectivity (about 40%).
    syn3 = concat(
        disjunction_of_symbols(pick([0, 2])),
        star(disjunction_of_symbols(pick([1, 3]))),
        disjunction_of_symbols(pick([1, 2, 4])),
    )
    return {"syn1": syn1, "syn2": syn2, "syn3": syn3}


def synthetic_queries(graph: GraphDB, alphabet_size: int = 20) -> dict[str, PathQuery]:
    """The syn1-syn3 queries compiled over the given synthetic graph's alphabet."""
    return {
        name: PathQuery.parse(expr, graph.alphabet)
        for name, expr in synthetic_query_expressions(alphabet_size).items()
    }


def synthetic_workloads(
    *,
    node_counts: tuple[int, ...] = (10000, 20000, 30000),
    alphabet_size: int = 20,
    zipf_exponent: float = 1.0,
    seed: int = 11,
) -> list[Workload]:
    """The synthetic workload: syn1-syn3 on graphs of the given sizes."""
    workloads: list[Workload] = []
    rng = random.Random(seed)
    for node_count in node_counts:
        graph = scale_free_graph(
            node_count,
            alphabet_size=alphabet_size,
            zipf_exponent=zipf_exponent,
            seed=rng.randint(0, 2**31),
        )
        for name, query in synthetic_queries(graph, alphabet_size).items():
            workloads.append(
                Workload(
                    name=f"{name}@{node_count}",
                    query=query,
                    graph=graph,
                    description="A.B*.C",
                )
            )
    return workloads
