"""The experimental evaluation harness (Section 5 of the paper).

* :mod:`repro.evaluation.metrics` -- precision, recall, F1 of a learned query
  treated as a binary classifier against the goal query;
* :mod:`repro.evaluation.workloads` -- the biological queries bio1-bio6
  (Table 1) and the synthetic queries syn1-syn3, together with the datasets
  they run on;
* :mod:`repro.evaluation.static` -- the static-scenario driver (Figures 11
  and 12: F1 score and learning time against the fraction of labeled nodes);
* :mod:`repro.evaluation.interactive` -- the interactive-scenario driver
  (Table 2: labels needed for F1 = 1 and time between interactions);
* :mod:`repro.evaluation.reporting` -- plain-text rendering of every table
  and figure series, used by the benchmark harness and EXPERIMENTS.md.
"""

from repro.evaluation.metrics import ClassificationScores, f1_score, score_query
from repro.evaluation.workloads import (
    Workload,
    biological_queries,
    biological_workloads,
    synthetic_queries,
    synthetic_workloads,
)
from repro.evaluation.static import StaticExperimentResult, StaticPoint, run_static_experiment
from repro.evaluation.interactive import (
    InteractiveExperimentResult,
    SimulationTask,
    run_interactive_experiment,
    run_interactive_grid,
)
from repro.evaluation.reporting import (
    render_figure11,
    render_figure12,
    render_table1,
    render_table2,
)

__all__ = [
    "ClassificationScores",
    "f1_score",
    "score_query",
    "Workload",
    "biological_queries",
    "biological_workloads",
    "synthetic_queries",
    "synthetic_workloads",
    "StaticPoint",
    "StaticExperimentResult",
    "run_static_experiment",
    "InteractiveExperimentResult",
    "SimulationTask",
    "run_interactive_experiment",
    "run_interactive_grid",
    "render_table1",
    "render_table2",
    "render_figure11",
    "render_figure12",
]
