"""The interactive-scenario experiment driver (Table 2).

Setup, following Section 5.3: start with an empty sample; repeatedly choose
a node with the strategy under test, ask the (simulated) user to label it,
and re-learn, until the learned query selects exactly the same nodes as the
goal query (F1 = 1).  Measured quantities, per workload and strategy:

* the fraction of graph nodes that had to be labeled, and
* the average time between interactions (the time to compute the next node
  and re-learn).

The "labels needed without interactions" column of Table 2 comes from the
static driver (:func:`repro.evaluation.static.run_static_experiment`).
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING

from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import LearningError, SerializationError
from repro.evaluation.metrics import f1_score
from repro.evaluation.workloads import Workload
from repro.interactive.oracle import QueryOracle
from repro.interactive.scenario import run_interactive_learning
from repro.interactive.strategies import make_strategy

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.api
    from repro.api.config import ExperimentConfig


@dataclass(frozen=True)
class InteractiveExperimentResult:
    """One row of Table 2 (one workload, one strategy).

    Implements the uniform :class:`repro.api.Result` protocol: ``ok``,
    ``query``, ``elapsed`` and a JSON-safe ``to_dict``/``from_dict`` pair.
    """

    workload_name: str
    strategy: str
    goal_selectivity: float
    interactions: int
    labeled_fraction: float
    mean_seconds_between_interactions: float
    final_f1: float
    halted_by: str
    learned_expression: str | None
    elapsed: float = 0.0

    @property
    def reached_goal(self) -> bool:
        """Whether the session stopped because the learned query matched the goal."""
        return self.halted_by == "goal"

    @property
    def ok(self) -> bool:
        """Result protocol: True iff the session reached the goal query."""
        return self.reached_goal

    @property
    def query(self) -> str | None:
        """Result protocol: the learned expression of the session, if any."""
        return self.learned_expression

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "InteractiveExperimentResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "query": self.query,
            "workload_name": self.workload_name,
            "strategy": self.strategy,
            "goal_selectivity": self.goal_selectivity,
            "interactions": self.interactions,
            "labeled_fraction": self.labeled_fraction,
            "mean_seconds_between_interactions": self.mean_seconds_between_interactions,
            "final_f1": self.final_f1,
            "halted_by": self.halted_by,
            "learned_expression": self.learned_expression,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InteractiveExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            return cls(
                workload_name=payload["workload_name"],
                strategy=payload["strategy"],
                goal_selectivity=payload["goal_selectivity"],
                interactions=payload["interactions"],
                labeled_fraction=payload["labeled_fraction"],
                mean_seconds_between_interactions=payload[
                    "mean_seconds_between_interactions"
                ],
                final_f1=payload["final_f1"],
                halted_by=payload["halted_by"],
                learned_expression=payload.get("learned_expression"),
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError) as error:
            raise SerializationError(
                f"malformed InteractiveExperimentResult payload: {error}"
            ) from error


def run_interactive_experiment(
    workload: Workload,
    *,
    strategy: str = "kR",
    seed: int = 0,
    k_start: int = 2,
    k_max: int = 4,
    max_interactions: int | None = None,
    pool_size: int | None = 512,
    target_f1: float = 1.0,
    incremental: bool = True,
    engine: QueryEngine | None = None,
    config: "ExperimentConfig | None" = None,
) -> InteractiveExperimentResult:
    """Run the interactive scenario for one workload and one strategy.

    ``max_interactions`` defaults to 10% of the graph's nodes, a generous
    budget given that the paper's interactive runs stay below 8%.
    ``target_f1`` is the halt threshold: 1.0 reproduces the paper's strongest
    condition, lower values model a user satisfied by an intermediate query.
    ``engine`` is the query engine used throughout: the oracle's goal
    evaluation, the loop's learner and halt checks and the final F1 scoring
    all run on it (the shared default if omitted), so per-engine cache stats
    account for the whole experiment.  ``config`` (an
    :class:`repro.api.ExperimentConfig`) overrides the loose keyword
    arguments when given; :meth:`repro.api.Workspace.run_experiment` is the
    preferred entry point.

    .. deprecated:: 1.1
        Calling this with loose keyword arguments is kept as a compatibility
        shim; prefer :meth:`repro.api.Workspace.run_experiment` with an
        :class:`repro.api.ExperimentConfig`.
    """
    if config is not None:
        strategy = config.strategy
        seed = config.seed
        k_start = config.k_start
        k_max = config.k_max
        max_interactions = config.max_interactions
        pool_size = config.pool_size
        target_f1 = config.target_f1
        incremental = config.incremental
    engine = engine or get_default_engine()
    graph, goal = workload.graph, workload.query
    engine.index_for(graph)
    if max_interactions is None:
        max_interactions = max(20, graph.node_count() // 10)
    if max_interactions < 1:
        raise LearningError("max_interactions must be at least 1")
    started = time.perf_counter()
    oracle = QueryOracle(goal, satisfaction_threshold=target_f1, engine=engine)
    strategy_impl = make_strategy(strategy, seed=seed, pool_size=pool_size)
    outcome = run_interactive_learning(
        graph,
        oracle,
        strategy_impl,
        k_start=k_start,
        k_max=k_max,
        max_interactions=max_interactions,
        engine=engine,
        incremental=incremental,
    )
    final_f1 = f1_score(outcome.query, goal, graph, engine=engine)
    return InteractiveExperimentResult(
        workload_name=workload.name,
        strategy=strategy_impl.name,
        goal_selectivity=workload.query.selectivity(workload.graph, engine=engine),
        interactions=outcome.interaction_count,
        labeled_fraction=outcome.labels_fraction(graph),
        mean_seconds_between_interactions=outcome.mean_seconds_between_interactions,
        final_f1=final_f1,
        halted_by=outcome.halted_by,
        learned_expression=None if outcome.query is None else outcome.query.expression,
        elapsed=time.perf_counter() - started,
    )


# -- the multi-session simulation grid -----------------------------------------


@dataclass(frozen=True)
class SimulationTask:
    """One cell of the strategy x seed x workload simulation grid.

    Self-contained and picklable: a worker process receives the task, builds
    its own :class:`~repro.engine.QueryEngine` (engines and their caches are
    per-process by design) and runs one full interactive session.
    """

    workload: Workload
    strategy: str
    seed: int
    k_start: int = 2
    k_max: int = 4
    max_interactions: int | None = None
    pool_size: int | None = 512
    target_f1: float = 1.0
    incremental: bool = True


def _run_simulation_task(task: SimulationTask) -> InteractiveExperimentResult:
    """Worker entry point: one grid cell, one fresh engine (module-level so
    it pickles under the spawn start method)."""
    return run_interactive_experiment(
        task.workload,
        strategy=task.strategy,
        seed=task.seed,
        k_start=task.k_start,
        k_max=task.k_max,
        max_interactions=task.max_interactions,
        pool_size=task.pool_size,
        target_f1=task.target_f1,
        incremental=task.incremental,
        engine=QueryEngine(),
    )


def run_interactive_grid(
    workloads: Sequence[Workload],
    *,
    strategies: Sequence[str] = ("kR", "kS"),
    seeds: Sequence[int] = (0,),
    k_start: int = 2,
    k_max: int = 4,
    max_interactions: int | None = None,
    pool_size: int | None = 512,
    target_f1: float = 1.0,
    incremental: bool = True,
    max_workers: int | None = None,
) -> list[InteractiveExperimentResult]:
    """Simulate a whole grid of interactive sessions, optionally in parallel.

    The grid is the cartesian product workload x strategy x seed -- the
    shape of Table 2 plus repetition seeds.  Sessions are independent (each
    one owns a fresh engine), so with ``max_workers > 1`` they run in a
    process pool; ``max_workers=1`` runs them inline in this process (the
    deterministic mode tests use), and ``max_workers=None`` picks
    ``min(cpu_count, number of tasks)``.  Results come back in grid order
    (workloads outermost, then strategies, then seeds) regardless of worker
    scheduling.
    """
    if max_workers is not None and max_workers < 1:
        raise LearningError("max_workers must be None or >= 1")
    tasks = [
        SimulationTask(
            workload=workload,
            strategy=strategy,
            seed=seed,
            k_start=k_start,
            k_max=k_max,
            max_interactions=max_interactions,
            pool_size=pool_size,
            target_f1=target_f1,
            incremental=incremental,
        )
        for workload, strategy, seed in product(workloads, strategies, seeds)
    ]
    if not tasks:
        return []
    workers = max_workers
    if workers is None:
        workers = min(os.cpu_count() or 1, len(tasks))
    if workers <= 1 or len(tasks) == 1:
        return [_run_simulation_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_simulation_task, tasks, chunksize=1))
