"""The interactive-scenario experiment driver (Table 2).

Setup, following Section 5.3: start with an empty sample; repeatedly choose
a node with the strategy under test, ask the (simulated) user to label it,
and re-learn, until the learned query selects exactly the same nodes as the
goal query (F1 = 1).  Measured quantities, per workload and strategy:

* the fraction of graph nodes that had to be labeled, and
* the average time between interactions (the time to compute the next node
  and re-learn).

The "labels needed without interactions" column of Table 2 comes from the
static driver (:func:`repro.evaluation.static.run_static_experiment`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import LearningError
from repro.evaluation.metrics import f1_score
from repro.evaluation.workloads import Workload
from repro.interactive.oracle import QueryOracle
from repro.interactive.scenario import run_interactive_learning
from repro.interactive.strategies import make_strategy


@dataclass(frozen=True)
class InteractiveExperimentResult:
    """One row of Table 2 (one workload, one strategy)."""

    workload_name: str
    strategy: str
    goal_selectivity: float
    interactions: int
    labeled_fraction: float
    mean_seconds_between_interactions: float
    final_f1: float
    halted_by: str
    learned_expression: str | None

    @property
    def reached_goal(self) -> bool:
        """Whether the session stopped because the learned query matched the goal."""
        return self.halted_by == "goal"


def run_interactive_experiment(
    workload: Workload,
    *,
    strategy: str = "kR",
    seed: int = 0,
    k_start: int = 2,
    k_max: int = 4,
    max_interactions: int | None = None,
    pool_size: int | None = 512,
    target_f1: float = 1.0,
    engine: QueryEngine | None = None,
) -> InteractiveExperimentResult:
    """Run the interactive scenario for one workload and one strategy.

    ``max_interactions`` defaults to 10% of the graph's nodes, a generous
    budget given that the paper's interactive runs stay below 8%.
    ``target_f1`` is the halt threshold: 1.0 reproduces the paper's strongest
    condition, lower values model a user satisfied by an intermediate query.
    ``engine`` is the query engine used for the final F1 scoring (the shared
    default if omitted); its graph index is warmed once before the first
    interaction.  The loop's own learner and halt checks always run on the
    shared default engine.
    """
    engine = engine or get_default_engine()
    graph, goal = workload.graph, workload.query
    engine.index_for(graph)
    if max_interactions is None:
        max_interactions = max(20, graph.node_count() // 10)
    if max_interactions < 1:
        raise LearningError("max_interactions must be at least 1")
    oracle = QueryOracle(goal, satisfaction_threshold=target_f1)
    strategy_impl = make_strategy(strategy, seed=seed, pool_size=pool_size)
    outcome = run_interactive_learning(
        graph,
        oracle,
        strategy_impl,
        k_start=k_start,
        k_max=k_max,
        max_interactions=max_interactions,
    )
    final_f1 = f1_score(outcome.query, goal, graph, engine=engine)
    return InteractiveExperimentResult(
        workload_name=workload.name,
        strategy=strategy_impl.name,
        goal_selectivity=workload.selectivity,
        interactions=outcome.interaction_count,
        labeled_fraction=outcome.labels_fraction(graph),
        mean_seconds_between_interactions=outcome.mean_seconds_between_interactions,
        final_f1=final_f1,
        halted_by=outcome.halted_by,
        learned_expression=None if outcome.query is None else outcome.query.expression,
    )
