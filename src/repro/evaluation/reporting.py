"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints these renderings so that the reproduced
numbers can be compared side by side with the paper (EXPERIMENTS.md records
that comparison).  Figures 11 and 12 are plots in the paper; here they are
rendered as the underlying series (one row per sweep point).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.evaluation.interactive import InteractiveExperimentResult
from repro.evaluation.static import StaticExperimentResult


def _format_percent(fraction: float) -> str:
    return f"{100.0 * fraction:.2f}%"


def render_table1(selectivity_report: Mapping[str, Mapping[str, object]]) -> str:
    """Render the Table 1 reproduction (query structures and selectivities)."""
    lines = [
        "Table 1: biological queries and selectivities",
        f"{'query':8s} {'selected':>9s} {'selectivity':>12s}  structure",
        "-" * 72,
    ]
    for name, row in selectivity_report.items():
        lines.append(
            f"{name:8s} {row['selected_nodes']:>9d} "
            f"{_format_percent(float(row['selectivity'])):>12s}  {row['expression']}"
        )
    return "\n".join(lines)


def render_figure11(results: Sequence[StaticExperimentResult]) -> str:
    """Render the Figure 11 series: F1 score vs. fraction of labeled nodes."""
    lines = ["Figure 11: static experiments - F1 score vs % labeled nodes"]
    for result in results:
        lines.append(
            f"  {result.workload_name} (selectivity {_format_percent(result.goal_selectivity)})"
        )
        for fraction, f1 in result.f1_series():
            lines.append(f"    labeled {_format_percent(fraction):>8s} -> F1 {f1:.3f}")
    return "\n".join(lines)


def render_figure12(results: Sequence[StaticExperimentResult]) -> str:
    """Render the Figure 12 series: learning time vs. fraction of labeled nodes."""
    lines = ["Figure 12: static experiments - learning time (s) vs % labeled nodes"]
    for result in results:
        lines.append(
            f"  {result.workload_name} (selectivity {_format_percent(result.goal_selectivity)})"
        )
        for fraction, seconds in result.time_series():
            lines.append(
                f"    labeled {_format_percent(fraction):>8s} -> {seconds:.3f} s"
            )
    return "\n".join(lines)


def render_table2(
    rows: Sequence[InteractiveExperimentResult],
    static_labels_needed: Mapping[str, float | None] | None = None,
) -> str:
    """Render the Table 2 reproduction (interactive experiments).

    ``static_labels_needed`` maps workload names to the fraction of labels
    the *static* scenario needed to reach F1 = 1 (the table's third column);
    pass None to omit that column.
    """
    lines = [
        "Table 2: interactive experiments",
        f"{'workload':>16s} {'strategy':>8s} {'static labels':>14s} "
        f"{'interactive labels':>19s} {'s/interaction':>14s} {'F1':>6s}",
        "-" * 84,
    ]
    for row in rows:
        static_value = None
        if static_labels_needed is not None:
            static_value = static_labels_needed.get(row.workload_name)
        static_text = _format_percent(static_value) if static_value is not None else "n/a"
        lines.append(
            f"{row.workload_name:>16s} {row.strategy:>8s} {static_text:>14s} "
            f"{_format_percent(row.labeled_fraction):>19s} "
            f"{row.mean_seconds_between_interactions:>14.3f} {row.final_f1:>6.3f}"
        )
    return "\n".join(lines)
