"""Regular expression abstract syntax trees.

Nodes are small immutable dataclasses.  Smart constructors (:func:`concat`,
:func:`disjunction`, :func:`star`) apply the obvious algebraic
simplifications (identity of epsilon for concatenation, idempotence of star,
absorption of the empty set) so that programmatically assembled expressions
stay readable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass


class Regex:
    """Base class of regular expression nodes."""

    def alphabet_symbols(self) -> frozenset[str]:
        """The set of alphabet symbols occurring in the expression."""
        raise NotImplementedError

    def node_count(self) -> int:
        """The number of AST nodes (a syntactic size measure)."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - delegated to subclasses
        raise NotImplementedError


@dataclass(frozen=True)
class Epsilon(Regex):
    """The empty word."""

    def alphabet_symbols(self) -> frozenset[str]:
        return frozenset()

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class EmptySet(Regex):
    """The empty language (used internally by DFA -> regex conversion)."""

    def alphabet_symbols(self) -> frozenset[str]:
        return frozenset()

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single alphabet symbol."""

    name: str

    def alphabet_symbols(self) -> frozenset[str]:
        return frozenset({self.name})

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation ``left . right``."""

    left: Regex
    right: Regex

    def alphabet_symbols(self) -> frozenset[str]:
        return self.left.alphabet_symbols() | self.right.alphabet_symbols()

    def node_count(self) -> int:
        return 1 + self.left.node_count() + self.right.node_count()

    def __str__(self) -> str:
        parts = []
        for child in (self.left, self.right):
            text = str(child)
            if isinstance(child, Union):
                text = f"({text})"
            parts.append(text)
        return ".".join(parts)


@dataclass(frozen=True)
class Union(Regex):
    """Disjunction ``left + right``."""

    left: Regex
    right: Regex

    def alphabet_symbols(self) -> frozenset[str]:
        return self.left.alphabet_symbols() | self.right.alphabet_symbols()

    def node_count(self) -> int:
        return 1 + self.left.node_count() + self.right.node_count()

    def __str__(self) -> str:
        return f"{self.left}+{self.right}"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star ``inner*``."""

    inner: Regex

    def alphabet_symbols(self) -> frozenset[str]:
        return self.inner.alphabet_symbols()

    def node_count(self) -> int:
        return 1 + self.inner.node_count()

    def __str__(self) -> str:
        text = str(self.inner)
        if isinstance(self.inner, (Union, Concat)):
            text = f"({text})"
        return f"{text}*"


# -- smart constructors -------------------------------------------------------


def epsilon() -> Regex:
    """The empty-word expression."""
    return Epsilon()


def symbol(name: str) -> Regex:
    """A single-symbol expression."""
    return Symbol(name)


def concat(*parts: Regex) -> Regex:
    """Concatenate the given expressions, simplifying epsilon and empty set."""
    result: Regex | None = None
    for part in parts:
        if isinstance(part, EmptySet):
            return EmptySet()
        if isinstance(part, Epsilon):
            continue
        result = part if result is None else Concat(result, part)
    return result if result is not None else Epsilon()


def disjunction(*parts: Regex) -> Regex:
    """Disjunction of the given expressions, dropping empty-set members."""
    useful = [part for part in parts if not isinstance(part, EmptySet)]
    # Deduplicate syntactically identical alternatives while keeping order.
    unique: list[Regex] = []
    for part in useful:
        if part not in unique:
            unique.append(part)
    if not unique:
        return EmptySet()
    result = unique[0]
    for part in unique[1:]:
        result = Union(result, part)
    return result


def disjunction_of_symbols(names: Iterable[str]) -> Regex:
    """Convenience: ``a1 + a2 + ... + an`` from symbol names."""
    return disjunction(*(Symbol(name) for name in names))


def star(inner: Regex) -> Regex:
    """Kleene star with the simplifications ``eps* = eps`` and ``(r*)* = r*``."""
    if isinstance(inner, (Epsilon, EmptySet)):
        return Epsilon()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def word_regex(word: Sequence[str]) -> Regex:
    """The expression denoting exactly one word (concatenation of its symbols)."""
    if not word:
        return Epsilon()
    return concat(*(Symbol(symbol_name) for symbol_name in word))
