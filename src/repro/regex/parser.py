"""Parser for the textual regular-expression syntax.

Grammar (standard precedence: star > concatenation > union)::

    expression  := term ('+' term)*
    term        := factor (('.' )? factor)*
    factor      := atom '*'*
    atom        := SYMBOL | 'eps' | '(' expression ')'

Symbols are identifiers (``[A-Za-z_][A-Za-z0-9_]*``) so multi-character edge
labels such as ``tram`` or ``ProteinPurification`` parse naturally.  The
concatenation dot may be omitted between adjacent factors (``a b c`` or even
``(a+b)c``), but writing it explicitly -- ``(tram+bus)*.cinema`` -- reads
closest to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegexSyntaxError
from repro.regex.ast import Epsilon, Regex, Symbol, concat, disjunction, star

_EPSILON_NAMES = {"eps", "epsilon", "ε"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'symbol', 'plus', 'dot', 'star', 'lparen', 'rparen'
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "+":
            tokens.append(_Token("plus", char, index))
            index += 1
        elif char in {".", "·"}:
            tokens.append(_Token("dot", char, index))
            index += 1
        elif char == "*":
            tokens.append(_Token("star", char, index))
            index += 1
        elif char == "(":
            tokens.append(_Token("lparen", char, index))
            index += 1
        elif char == ")":
            tokens.append(_Token("rparen", char, index))
            index += 1
        elif char.isalpha() or char == "_" or char == "ε":
            start = index
            if char == "ε":
                index += 1
            else:
                while index < length and (text[index].isalnum() or text[index] == "_"):
                    index += 1
            tokens.append(_Token("symbol", text[start:index], start))
        else:
            raise RegexSyntaxError(f"unexpected character {char!r}", position=index)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of expression", position=len(self._source))
        self._index += 1
        return token

    def parse(self) -> Regex:
        expression = self._expression()
        trailing = self._peek()
        if trailing is not None:
            raise RegexSyntaxError(
                f"unexpected token {trailing.text!r}", position=trailing.position
            )
        return expression

    def _expression(self) -> Regex:
        terms = [self._term()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "plus":
                self._advance()
                terms.append(self._term())
            else:
                break
        return disjunction(*terms)

    def _term(self) -> Regex:
        factors = [self._factor()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "dot":
                self._advance()
                factors.append(self._factor())
            elif token.kind in {"symbol", "lparen"}:
                # Implicit concatenation between adjacent factors.
                factors.append(self._factor())
            else:
                break
        return concat(*factors)

    def _factor(self) -> Regex:
        atom = self._atom()
        while True:
            token = self._peek()
            if token is not None and token.kind == "star":
                self._advance()
                atom = star(atom)
            else:
                break
        return atom

    def _atom(self) -> Regex:
        token = self._advance()
        if token.kind == "symbol":
            if token.text in _EPSILON_NAMES:
                return Epsilon()
            return Symbol(token.text)
        if token.kind == "lparen":
            inner = self._expression()
            closing = self._advance()
            if closing.kind != "rparen":
                raise RegexSyntaxError("expected ')'", position=closing.position)
            return inner
        raise RegexSyntaxError(
            f"unexpected token {token.text!r}", position=token.position
        )


def parse(text: str) -> Regex:
    """Parse a regular expression string into its AST.

    Raises :class:`~repro.errors.RegexSyntaxError` on malformed input.
    """
    if not text or not text.strip():
        raise RegexSyntaxError("empty regular expression")
    return _Parser(_tokenize(text), text).parse()
