"""Regular expressions over graph edge alphabets.

The grammar is exactly the one of Section 2 of the paper::

    q := eps | a (a in Sigma) | q1 + q2 | q1 . q2 | q*

This subpackage provides the AST (:mod:`repro.regex.ast`), a parser for a
human-friendly textual syntax (:mod:`repro.regex.parser`), the Thompson
construction into an NFA and through it the canonical DFA
(:mod:`repro.regex.build`), and the reverse conversion from a DFA back to a
regular expression by state elimination (:mod:`repro.regex.convert`), used to
report learned queries in readable form.
"""

from repro.regex.ast import (
    Concat,
    EmptySet,
    Epsilon,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    disjunction,
    epsilon,
    star,
    symbol,
)
from repro.regex.parser import parse
from repro.regex.build import regex_to_nfa, regex_to_dfa, compile_query
from repro.regex.convert import dfa_to_regex

__all__ = [
    "Regex",
    "Epsilon",
    "EmptySet",
    "Symbol",
    "Concat",
    "Union",
    "Star",
    "epsilon",
    "symbol",
    "concat",
    "disjunction",
    "star",
    "parse",
    "regex_to_nfa",
    "regex_to_dfa",
    "compile_query",
    "dfa_to_regex",
]
