"""Compiling regular expressions into automata (Thompson construction)."""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa
from repro.automata.nfa import NFA
from repro.errors import RegexSyntaxError
from repro.regex.ast import Concat, EmptySet, Epsilon, Regex, Star, Symbol, Union
from repro.regex.parser import parse


def regex_to_nfa(regex: Regex, alphabet: Alphabet | None = None) -> NFA:
    """Compile a regex AST into an epsilon-NFA via the Thompson construction.

    If ``alphabet`` is omitted, the alphabet is the set of symbols occurring
    in the expression (which must then be non-empty or the expression must be
    epsilon-only).
    """
    if alphabet is None:
        symbols = regex.alphabet_symbols()
        alphabet = Alphabet(symbols if symbols else ["_unused_"])
    nfa = NFA(alphabet)
    counter = itertools.count()

    def fresh() -> int:
        return next(counter)

    def build(node: Regex) -> tuple[int, int]:
        """Return (entry, exit) states of the fragment for ``node``."""
        if isinstance(node, Epsilon):
            entry, exit_ = fresh(), fresh()
            nfa.add_epsilon_transition(entry, exit_)
            return entry, exit_
        if isinstance(node, EmptySet):
            entry, exit_ = fresh(), fresh()
            nfa.add_state(entry)
            nfa.add_state(exit_)
            return entry, exit_
        if isinstance(node, Symbol):
            entry, exit_ = fresh(), fresh()
            nfa.add_transition(entry, node.name, exit_)
            return entry, exit_
        if isinstance(node, Concat):
            left_entry, left_exit = build(node.left)
            right_entry, right_exit = build(node.right)
            nfa.add_epsilon_transition(left_exit, right_entry)
            return left_entry, right_exit
        if isinstance(node, Union):
            entry, exit_ = fresh(), fresh()
            left_entry, left_exit = build(node.left)
            right_entry, right_exit = build(node.right)
            nfa.add_epsilon_transition(entry, left_entry)
            nfa.add_epsilon_transition(entry, right_entry)
            nfa.add_epsilon_transition(left_exit, exit_)
            nfa.add_epsilon_transition(right_exit, exit_)
            return entry, exit_
        if isinstance(node, Star):
            entry, exit_ = fresh(), fresh()
            inner_entry, inner_exit = build(node.inner)
            nfa.add_epsilon_transition(entry, inner_entry)
            nfa.add_epsilon_transition(inner_exit, exit_)
            nfa.add_epsilon_transition(entry, exit_)
            nfa.add_epsilon_transition(inner_exit, inner_entry)
            return entry, exit_
        raise RegexSyntaxError(f"unknown regex node: {node!r}")

    entry, exit_ = build(regex)
    nfa.add_initial(entry)
    nfa.add_final(exit_)
    return nfa


def regex_to_dfa(regex: Regex, alphabet: Alphabet | None = None) -> DFA:
    """Compile a regex AST into the canonical DFA of its language."""
    return canonical_dfa(regex_to_nfa(regex, alphabet))


def compile_query(expression: str | Regex, alphabet: Alphabet | Iterable[str] | None = None) -> DFA:
    """Compile a regular expression (string or AST) into its canonical DFA.

    This is the low-level counterpart of
    :meth:`repro.queries.PathQuery.parse`; it accepts an explicit alphabet so
    that a query can be evaluated on graphs whose alphabet is larger than the
    set of symbols mentioned in the expression.
    """
    regex = parse(expression) if isinstance(expression, str) else expression
    if alphabet is not None and not isinstance(alphabet, Alphabet):
        alphabet = Alphabet(alphabet)
    if alphabet is not None:
        mentioned = regex.alphabet_symbols()
        missing = mentioned - set(alphabet.symbols)
        if missing:
            raise RegexSyntaxError(
                f"expression uses symbols outside the alphabet: {sorted(missing)!r}"
            )
    return regex_to_dfa(regex, alphabet)
