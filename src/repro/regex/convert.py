"""DFA -> regular expression conversion by state elimination.

The learner returns queries as canonical DFAs; for reporting (examples,
experiment logs, EXPERIMENTS.md) it is far more readable to show the
equivalent regular expression, so this module implements the classical
state-elimination (Brzozowski-McCluskey) algorithm over the regex AST.
The result is not guaranteed to be the syntactically smallest expression,
but it is always language-equivalent to the input automaton.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.regex.ast import (
    EmptySet,
    Epsilon,
    Regex,
    Star,
    Symbol,
    concat,
    disjunction,
    star,
)


def _add_edge(edges: dict[tuple[object, object], Regex], source: object, target: object, label: Regex) -> None:
    key = (source, target)
    existing = edges.get(key)
    edges[key] = label if existing is None else disjunction(existing, label)


def dfa_to_regex(automaton: DFA | NFA) -> Regex:
    """Return a regular expression denoting the language of the automaton."""
    nfa = automaton.to_nfa() if isinstance(automaton, DFA) else automaton
    nfa = nfa.trim()
    if nfa.is_empty():
        return EmptySet()

    # Generalized NFA with a unique fresh start and accept state.
    start, accept = ("__start__",), ("__accept__",)
    edges: dict[tuple[object, object], Regex] = {}
    for state in nfa.initial_states:
        _add_edge(edges, start, state, Epsilon())
    for state in nfa.final_states:
        _add_edge(edges, state, accept, Epsilon())
    for source, symbol, target in nfa.transitions():
        _add_edge(edges, source, target, Symbol(symbol))
    for source in nfa.states:
        for target in nfa.epsilon_successors(source):
            _add_edge(edges, source, target, Epsilon())

    interior = sorted(nfa.states, key=repr)
    for eliminated in interior:
        self_loop = edges.pop((eliminated, eliminated), None)
        loop_regex: Regex = star(self_loop) if self_loop is not None else Epsilon()
        incoming = [
            (source, label)
            for (source, target), label in edges.items()
            if target == eliminated and source != eliminated
        ]
        outgoing = [
            (target, label)
            for (source, target), label in edges.items()
            if source == eliminated and target != eliminated
        ]
        for source, _ in incoming:
            edges.pop((source, eliminated), None)
        for target, _ in outgoing:
            edges.pop((eliminated, target), None)
        for source, in_label in incoming:
            for target, out_label in outgoing:
                _add_edge(edges, source, target, concat(in_label, loop_regex, out_label))

    result = edges.get((start, accept))
    if result is None:
        return EmptySet()
    return _simplify(result)


def symbol_node(name: str) -> Regex:
    """Build a symbol node (kept as a tiny helper for symmetry in callers)."""
    return Symbol(name)


def _simplify(regex: Regex) -> Regex:
    """Light syntactic clean-up: drop redundant epsilon in stars and unions."""
    if isinstance(regex, Star):
        return star(_simplify(regex.inner))
    if isinstance(regex, (Epsilon, EmptySet, Symbol)):
        return regex
    # Concat / Union: rebuild through the smart constructors.
    from repro.regex.ast import Concat, Union

    if isinstance(regex, Concat):
        return concat(_simplify(regex.left), _simplify(regex.right))
    if isinstance(regex, Union):
        return disjunction(_simplify(regex.left), _simplify(regex.right))
    return regex
