"""Query evaluation on a graph via the product construction.

Monadic semantics (Section 2)::

    q(G) = { nu in G | L(q) & paths_G(nu) != {} }

Evaluation builds the product of the graph with the query automaton: product
states are pairs ``(node, automaton state)``, and a node ``nu`` is selected
iff from ``(nu, q0)`` some pair whose automaton state is accepting is
reachable.  Computing the co-reachable set of accepting pairs once (backward
breadth-first search) evaluates the query on *all* nodes in
``O(|E| * |Q| + |V| * |Q|)`` time.

This module plays two roles since the engine subsystem landed:

* the **public functions** (:func:`evaluate`, :func:`node_selects`,
  :func:`any_node_selects`, :func:`binary_evaluate`, :func:`pair_selects`)
  are thin compatibility wrappers over the shared
  :class:`~repro.engine.engine.QueryEngine`, which adds the CSR graph index,
  compiled plans and plan/result caches;
* the ``reference_*`` functions keep the original dict/frozenset product
  construction as the executable specification.  The engine's parity tests
  (``tests/engine``) pin the two against each other on randomized graphs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import GraphError
from repro.graphdb.graph import GraphDB, Node

AutomatonState = Hashable


def _engine():
    # Imported lazily: repro.engine.engine itself imports repro.graphdb.graph,
    # so a module-level import here would be circular whenever repro.engine
    # is the first subpackage loaded.
    from repro.engine.engine import get_default_engine

    return get_default_engine()


# -- engine-backed public API ---------------------------------------------------


def evaluate(graph: GraphDB, automaton: DFA | NFA) -> frozenset[Node]:
    """The set of nodes selected by the query automaton (monadic semantics)."""
    return _engine().evaluate(graph, automaton)


def node_selects(graph: GraphDB, automaton: DFA | NFA, node: Node) -> bool:
    """Whether the query selects one given node.

    Early-exit forward product search; cheaper than :func:`evaluate` when
    only one node matters (e.g. the interactive loop's halt checks), and
    free when the engine already has the whole-graph result cached.
    """
    return _engine().selects(graph, automaton, node)


def any_node_selects(graph: GraphDB, automaton: DFA | NFA, nodes: Iterable[Node]) -> bool:
    """Whether the query selects at least one of the given nodes.

    Equivalent to ``L(automaton) & paths_G(nodes) != {}`` -- the polynomial
    intersection-emptiness test at the heart of Algorithm 1's merge guard
    (a candidate generalization is rejected iff it selects a negative node).
    """
    return _engine().any_selects(graph, automaton, nodes)


def binary_evaluate(graph: GraphDB, automaton: DFA | NFA) -> frozenset[tuple[Node, Node]]:
    """The set of node pairs selected under the binary semantics.

    ``(nu, nu')`` is selected iff some path from ``nu`` to ``nu'`` has its
    label word in the query language.
    """
    return _engine().binary_evaluate(graph, automaton)


def pair_selects(graph: GraphDB, automaton: DFA | NFA, origin: Node, end: Node) -> bool:
    """Whether the query selects the pair ``(origin, end)`` (binary semantics)."""
    return _engine().pair_selects(graph, automaton, origin, end)


# -- reference implementation ---------------------------------------------------


def _automaton_parts(automaton: DFA | NFA):
    """Return (initial states, final states, delta(state, symbol) -> set) helpers."""
    if isinstance(automaton, DFA):
        initials = frozenset([automaton.initial])
        finals = automaton.final_states

        def successors(state: AutomatonState, symbol: str) -> frozenset[AutomatonState]:
            target = automaton.delta(state, symbol)
            return frozenset() if target is None else frozenset([target])

        return initials, finals, successors
    if automaton.has_epsilon_transitions:
        raise GraphError("query automata must be epsilon-free; determinize first")
    initials = automaton.epsilon_closure(automaton.initial_states)
    finals = automaton.final_states

    def successors(state: AutomatonState, symbol: str) -> frozenset[AutomatonState]:
        return automaton.successors(state, symbol)

    return initials, finals, successors


def _accepting_pairs(graph: GraphDB, automaton: DFA | NFA) -> set[tuple[Node, AutomatonState]]:
    """All product pairs from which an accepting pair is reachable (backward BFS)."""
    initials, finals, successors = _automaton_parts(automaton)
    # Build the backward product adjacency lazily: predecessors of (v', s')
    # are pairs (v, s) with an edge (v, a, v') and s' in delta(s, a).
    alphabet = graph.alphabet
    usable_symbols = [s for s in alphabet if s in automaton.alphabet]

    automaton_states = (
        automaton.states if isinstance(automaton, NFA) else frozenset(automaton.states)
    )
    # Pre-index the automaton transitions per symbol, keeping only the
    # symbols with at least one transition ...
    delta_by_symbol: dict[str, list[tuple[AutomatonState, frozenset[AutomatonState]]]] = {}
    for state in automaton_states:
        for symbol in usable_symbols:
            targets = successors(state, symbol)
            if targets:
                delta_by_symbol.setdefault(symbol, []).append((state, targets))

    # ... so that each graph edge only meets the automaton states that
    # actually move on its label (instead of all |Q| states per edge).
    predecessors: dict[tuple[Node, AutomatonState], set[tuple[Node, AutomatonState]]] = {}
    for origin, label, end in graph.edges:
        moves = delta_by_symbol.get(label)
        if not moves:
            continue
        for state, targets in moves:
            for target in targets:
                predecessors.setdefault((end, target), set()).add((origin, state))

    coreachable: set[tuple[Node, AutomatonState]] = set()
    queue: deque[tuple[Node, AutomatonState]] = deque()
    for node in graph.nodes:
        for final in finals:
            pair = (node, final)
            coreachable.add(pair)
            queue.append(pair)
    while queue:
        pair = queue.popleft()
        for predecessor in predecessors.get(pair, ()):
            if predecessor not in coreachable:
                coreachable.add(predecessor)
                queue.append(predecessor)
    return coreachable


def reference_evaluate(graph: GraphDB, automaton: DFA | NFA) -> frozenset[Node]:
    """The original whole-graph evaluation (backward product BFS)."""
    initials, finals, _ = _automaton_parts(automaton)
    if not finals:
        return frozenset()
    coreachable = _accepting_pairs(graph, automaton)
    selected: set[Node] = set()
    for node in graph.nodes:
        if any((node, initial) in coreachable for initial in initials):
            selected.add(node)
    return frozenset(selected)


def reference_node_selects(graph: GraphDB, automaton: DFA | NFA, node: Node) -> bool:
    """The original single-node check (forward product BFS, early exit)."""
    if node not in graph:
        raise GraphError(f"node {node!r} is not in the graph")
    initials, finals, successors = _automaton_parts(automaton)
    if not finals:
        return False
    if initials & finals:
        return True
    queue: deque[tuple[Node, AutomatonState]] = deque(
        (node, initial) for initial in initials
    )
    seen: set[tuple[Node, AutomatonState]] = set(queue)
    while queue:
        current_node, current_state = queue.popleft()
        for label, target_node in graph.out_edges(current_node):
            targets = successors(current_state, label) if label in automaton.alphabet else frozenset()
            for target_state in targets:
                if target_state in finals:
                    return True
                pair = (target_node, target_state)
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
    return False


def reference_any_node_selects(
    graph: GraphDB, automaton: DFA | NFA, nodes: Iterable[Node]
) -> bool:
    """The original multi-source intersection-emptiness test."""
    initials, finals, successors = _automaton_parts(automaton)
    if not finals:
        return False
    starts = list(nodes)
    for node in starts:
        if node not in graph:
            raise GraphError(f"node {node!r} is not in the graph")
    if not starts:
        return False
    if initials & finals:
        return True
    queue: deque[tuple[Node, AutomatonState]] = deque(
        (node, initial) for node in starts for initial in initials
    )
    seen: set[tuple[Node, AutomatonState]] = set(queue)
    while queue:
        current_node, current_state = queue.popleft()
        for label, target_node in graph.out_edges(current_node):
            if label not in automaton.alphabet:
                continue
            for target_state in successors(current_state, label):
                if target_state in finals:
                    return True
                pair = (target_node, target_state)
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
    return False


def reference_binary_evaluate(
    graph: GraphDB, automaton: DFA | NFA
) -> frozenset[tuple[Node, Node]]:
    """The original binary-semantics evaluation (one BFS per source node)."""
    initials, finals, successors = _automaton_parts(automaton)
    result: set[tuple[Node, Node]] = set()
    if not finals:
        return frozenset()
    for source in graph.nodes:
        queue: deque[tuple[Node, AutomatonState]] = deque(
            (source, initial) for initial in initials
        )
        seen: set[tuple[Node, AutomatonState]] = set(queue)
        for node, state in list(queue):
            if state in finals:
                result.add((source, node))
        while queue:
            current_node, current_state = queue.popleft()
            for label, target_node in graph.out_edges(current_node):
                if label not in automaton.alphabet:
                    continue
                for target_state in successors(current_state, label):
                    pair = (target_node, target_state)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    queue.append(pair)
                    if target_state in finals:
                        result.add((source, target_node))
    return frozenset(result)


def reference_pair_selects(
    graph: GraphDB, automaton: DFA | NFA, origin: Node, end: Node
) -> bool:
    """The original pair check (forward product BFS, early exit)."""
    if origin not in graph or end not in graph:
        raise GraphError("both endpoints must be in the graph")
    initials, finals, successors = _automaton_parts(automaton)
    if not finals:
        return False
    if origin == end and (initials & finals):
        return True
    queue: deque[tuple[Node, AutomatonState]] = deque(
        (origin, initial) for initial in initials
    )
    seen: set[tuple[Node, AutomatonState]] = set(queue)
    while queue:
        current_node, current_state = queue.popleft()
        if current_node == end and current_state in finals:
            return True
        for label, target_node in graph.out_edges(current_node):
            if label not in automaton.alphabet:
                continue
            for target_state in successors(current_state, label):
                pair = (target_node, target_state)
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
    return False
