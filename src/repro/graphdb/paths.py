"""The path semantics of a graph database.

For a node ``nu``, ``paths_G(nu)`` is the language of all words matching a
node sequence starting at ``nu`` (Section 2).  The set is infinite as soon
as a cycle is reachable from ``nu``, so the library exposes it in two forms:

* as an :class:`~repro.automata.nfa.NFA` whose states are the graph's own
  nodes and whose states are all accepting (:func:`paths_nfa`) -- this is the
  representation used for the exact language-level checks of Lemmas 3.1/4.1
  and for the polynomial intersection-emptiness tests of Algorithm 1;
* as a bounded enumeration in canonical order (:func:`enumerate_paths`) --
  this is what the learner's SCP-selection step and the ``k``-informativeness
  strategies consume.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from heapq import heappop, heappush

from repro.automata.alphabet import Word
from repro.automata.nfa import NFA
from repro.errors import GraphError
from repro.graphdb.graph import GraphDB, Node


def paths_nfa(graph: GraphDB, start_nodes: Iterable[Node] | Node) -> NFA:
    """The NFA whose language is ``paths_G(X)`` for the given start nodes.

    The automaton reuses the graph's nodes as states; every state is
    accepting because a path may stop at any node (including immediately:
    the empty word belongs to ``paths_G(nu)`` for every node).
    """
    if isinstance(start_nodes, (str, bytes)) or not isinstance(start_nodes, Iterable):
        starts: list[Node] = [start_nodes]
    else:
        starts = list(start_nodes)
    for node in starts:
        if node not in graph:
            raise GraphError(f"node {node!r} is not in the graph")
    nfa = NFA(graph.alphabet, states=graph.nodes, initial=starts, finals=graph.nodes)
    for origin, label, end in graph.edges:
        nfa.add_transition(origin, label, end)
    return nfa


def paths_between_nfa(graph: GraphDB, origin: Node, end: Node) -> NFA:
    """The NFA whose language is ``paths2_G(origin, end)`` (binary semantics).

    Same construction as :func:`paths_nfa` but with ``end`` as the only
    accepting state, so the accepted words are exactly the labels of paths
    from ``origin`` to ``end``.
    """
    for node in (origin, end):
        if node not in graph:
            raise GraphError(f"node {node!r} is not in the graph")
    nfa = NFA(graph.alphabet, states=graph.nodes, initial=[origin], finals=[end])
    for edge_origin, label, edge_end in graph.edges:
        nfa.add_transition(edge_origin, label, edge_end)
    return nfa


def enumerate_paths(
    graph: GraphDB,
    node: Node,
    *,
    max_length: int,
    limit: int | None = None,
) -> Iterator[Word]:
    """Yield the distinct paths of ``node`` of length <= ``max_length``.

    Paths (label words) are produced in the canonical order: shorter first,
    ties broken lexicographically by the graph's alphabet order.  Distinct
    node sequences carrying the same label word are yielded once.

    A best-first search over (word-key, frontier-of-nodes) pairs produces
    the canonical order directly without materializing all words of a level.
    """
    if node not in graph:
        raise GraphError(f"node {node!r} is not in the graph")
    if max_length < 0:
        raise GraphError("max_length must be non-negative")
    alphabet = graph.alphabet
    count = 0
    # Heap of (canonical key, word, frozenset of nodes reachable via word).
    heap: list[tuple[tuple[int, tuple[int, ...]], Word, frozenset[Node]]] = []
    heappush(heap, (alphabet.word_key(()), (), frozenset([node])))
    emitted: set[Word] = set()
    while heap:
        _, word, frontier = heappop(heap)
        if word in emitted:
            continue
        emitted.add(word)
        yield word
        count += 1
        if limit is not None and count >= limit:
            return
        if len(word) >= max_length:
            continue
        for symbol in alphabet:
            next_frontier: set[Node] = set()
            for current in frontier:
                next_frontier.update(graph.successors(current, symbol))
            if next_frontier:
                extended = word + (symbol,)
                if extended not in emitted:
                    heappush(
                        heap,
                        (alphabet.word_key(extended), extended, frozenset(next_frontier)),
                    )


def enumerate_paths_between(
    graph: GraphDB,
    origin: Node,
    end: Node,
    *,
    max_length: int,
    limit: int | None = None,
) -> Iterator[Word]:
    """Yield the label words of paths from ``origin`` to ``end`` (canonical order).

    This is the binary-semantics counterpart of :func:`enumerate_paths`,
    used by the binary learner (Algorithm 2).
    """
    if origin not in graph or end not in graph:
        raise GraphError("both endpoints must be in the graph")
    if max_length < 0:
        raise GraphError("max_length must be non-negative")
    alphabet = graph.alphabet
    count = 0
    heap: list[tuple[tuple[int, tuple[int, ...]], Word, frozenset[Node]]] = []
    heappush(heap, (alphabet.word_key(()), (), frozenset([origin])))
    seen_words: set[Word] = set()
    while heap:
        _, word, frontier = heappop(heap)
        if word in seen_words:
            continue
        seen_words.add(word)
        if end in frontier:
            yield word
            count += 1
            if limit is not None and count >= limit:
                return
        if len(word) >= max_length:
            continue
        for symbol in alphabet:
            next_frontier: set[Node] = set()
            for current in frontier:
                next_frontier.update(graph.successors(current, symbol))
            if next_frontier:
                extended = word + (symbol,)
                if extended not in seen_words:
                    heappush(
                        heap,
                        (alphabet.word_key(extended), extended, frozenset(next_frontier)),
                    )


def node_has_path(graph: GraphDB, node: Node, word: Sequence[str]) -> bool:
    """Whether ``word`` belongs to ``paths_G(node)``.

    Runs the word over the graph starting from ``node``; linear in
    ``len(word) * |V|`` in the worst case.
    """
    if node not in graph:
        raise GraphError(f"node {node!r} is not in the graph")
    frontier: set[Node] = {node}
    for symbol in word:
        next_frontier: set[Node] = set()
        for current in frontier:
            next_frontier.update(graph.successors(current, symbol))
        frontier = next_frontier
        if not frontier:
            return False
    return True


def covered_by(graph: GraphDB, word: Sequence[str], nodes: Iterable[Node]) -> bool:
    """Whether ``word`` is *covered* by one of the given nodes.

    A path ``w`` is covered by a node ``nu`` when ``w`` is in ``paths_G(nu)``
    (Section 2).  The learner uses this with the negative example set: a
    candidate path for a positive node is *consistent* only if it is not
    covered by any negative node.

    The check runs the word over the graph from all the given nodes at once
    (one multi-source frontier), so its cost does not grow with the number
    of nodes beyond the initial frontier size.
    """
    frontier: set[Node] = set()
    for node in nodes:
        if node not in graph:
            raise GraphError(f"node {node!r} is not in the graph")
        frontier.add(node)
    if not frontier:
        return False
    for symbol in word:
        next_frontier: set[Node] = set()
        for current in frontier:
            next_frontier.update(graph.successors(current, symbol))
        frontier = next_frontier
        if not frontier:
            return False
    return True
