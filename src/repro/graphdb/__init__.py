"""Graph database substrate.

A graph database (Section 2 of the paper) is a finite, directed,
edge-labeled graph ``G = (V, E)`` with ``E`` a subset of ``V x Sigma x V``.
This subpackage provides:

* :class:`~repro.graphdb.graph.GraphDB` -- the graph itself, with node/edge
  construction, adjacency queries, neighborhood extraction and (de)serialization;
* :mod:`repro.graphdb.paths` -- the path semantics ``paths_G(nu)``: the graph
  viewed as an NFA, bounded canonical-order path enumeration, and coverage
  checks against sets of nodes;
* :mod:`repro.graphdb.product` -- evaluation of automaton-defined queries on a
  graph via the product construction (monadic and binary semantics);
* :mod:`repro.graphdb.io` -- edge-list and JSON serialization.
"""

from repro.graphdb.graph import GraphDB
from repro.graphdb.paths import (
    covered_by,
    enumerate_paths,
    enumerate_paths_between,
    paths_nfa,
    paths_between_nfa,
)
from repro.graphdb.product import (
    any_node_selects,
    binary_evaluate,
    evaluate,
    node_selects,
    pair_selects,
    reference_any_node_selects,
    reference_binary_evaluate,
    reference_evaluate,
    reference_node_selects,
    reference_pair_selects,
)
from repro.graphdb.io import (
    graph_from_edge_list,
    graph_from_json,
    graph_to_edge_list,
    graph_to_json,
    load_graph,
    save_graph,
)

__all__ = [
    "GraphDB",
    "paths_nfa",
    "paths_between_nfa",
    "enumerate_paths",
    "enumerate_paths_between",
    "covered_by",
    "evaluate",
    "node_selects",
    "any_node_selects",
    "binary_evaluate",
    "pair_selects",
    "reference_evaluate",
    "reference_node_selects",
    "reference_any_node_selects",
    "reference_binary_evaluate",
    "reference_pair_selects",
    "graph_from_edge_list",
    "graph_to_edge_list",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "save_graph",
]
