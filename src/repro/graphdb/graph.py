"""The edge-labeled directed graph database.

Nodes are arbitrary hashable identifiers (strings in all the paper's
examples).  Edges are triples ``(origin, label, end)``; parallel edges with
different labels are allowed, duplicate triples are stored once (the paper's
``E`` is a set).
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Mapping

from repro.automata.alphabet import Alphabet
from repro.errors import GraphError

Node = Hashable
Edge = tuple[Node, str, Node]

#: Process-wide source of unique graph identifiers (see :attr:`GraphDB.uid`).
_GRAPH_UIDS = itertools.count()

#: How many recent mutations a graph's delta log retains.  The log exists so
#: the engine can *refresh* a CSR index incrementally instead of rebuilding
#: it (see :meth:`repro.engine.index.GraphIndex.refresh`); once a consumer
#: falls further behind than this, it has to rebuild anyway, so older
#: entries are dropped to bound memory.
DELTA_LOG_CAP = 65536


def mint_graph_uid() -> int:
    """A fresh process-wide graph uid (for graph-like objects that are not
    :class:`GraphDB` instances, e.g. snapshot-backed views)."""
    return next(_GRAPH_UIDS)


class GraphDB:
    """A finite, directed, edge-labeled graph database.

    Parameters
    ----------
    alphabet:
        The edge-label alphabet.  It may be given up front (an
        :class:`Alphabet` or an iterable of labels); if omitted, it grows
        automatically as edges with new labels are added.
    """

    def __init__(self, alphabet: Alphabet | Iterable[str] | None = None) -> None:
        if alphabet is None:
            self._alphabet: Alphabet | None = None
            self._fixed_alphabet = False
        elif isinstance(alphabet, Alphabet):
            self._alphabet = alphabet
            self._fixed_alphabet = True
        else:
            self._alphabet = Alphabet(alphabet)
            self._fixed_alphabet = True
        # Insertion-ordered node registry (dict keys): iteration order is the
        # *stable node order* -- deterministic across processes and hash
        # seeds, unlike set iteration or repr-sorting (a default object repr
        # embeds the memory address).
        self._nodes: dict[Node, None] = {}
        self._node_order: tuple[Node, ...] | None = None  # cache; dropped on insertion
        # Insertion-ordered edge registry (dict keys), like nodes and labels:
        # replaying it (copy, subgraph) preserves the stable node/label
        # orders, so derived artifacts (CSR indexes, edge-list renderings,
        # snapshots) are hash-seed independent.
        self._edges: dict[Edge, None] = {}
        # adjacency: origin -> label -> set of ends
        self._forward: dict[Node, dict[str, set[Node]]] = {}
        # reverse adjacency: end -> label -> set of origins
        self._backward: dict[Node, dict[str, set[Node]]] = {}
        # Insertion-ordered label registry (dict keys), mirroring the node
        # registry: iteration order is the *stable label order*.
        self._labels: dict[str, None] = {}
        self._uid: int = next(_GRAPH_UIDS)
        self._version: int = 0
        # Mutation delta log: one event per version increment, so the event
        # for version v sits at index v - 1 - _delta_base.  Capped at
        # DELTA_LOG_CAP (oldest entries dropped, _delta_base advanced).
        self._delta: list[tuple] = []
        self._delta_base: int = 0

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add a node (idempotent) and return it."""
        if node is None:
            raise GraphError("None is not a valid node identifier")
        if node not in self._nodes:
            self._nodes[node] = None
            self._node_order = None
            self._version += 1
            self._log_mutation(("node", node))
        return node

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add several nodes."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, origin: Node, label: str, end: Node) -> Edge:
        """Add the edge ``origin --label--> end`` (adding missing endpoints)."""
        if not isinstance(label, str) or not label:
            raise GraphError(f"invalid edge label: {label!r}")
        if self._fixed_alphabet and self._alphabet is not None and label not in self._alphabet:
            raise GraphError(f"label {label!r} is not in the graph's alphabet")
        self.add_node(origin)
        self.add_node(end)
        edge = (origin, label, end)
        if edge not in self._edges:
            self._edges[edge] = None
            self._version += 1
            self._log_mutation(("edge", origin, label, end))
            self._forward.setdefault(origin, {}).setdefault(label, set()).add(end)
            self._backward.setdefault(end, {}).setdefault(label, set()).add(origin)
            if label not in self._labels:
                self._labels[label] = None
                if not self._fixed_alphabet:
                    self._alphabet = None  # invalidate the cached derived alphabet
        return edge

    def add_edges(self, edges: Iterable[tuple[Node, str, Node]]) -> None:
        """Add several ``(origin, label, end)`` edges."""
        for origin, label, end in edges:
            self.add_edge(origin, label, end)

    # -- accessors -----------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """The edge-label alphabet (derived from the edges if not fixed)."""
        if self._alphabet is None:
            if not self._labels:
                raise GraphError("the graph has no labels and no declared alphabet")
            self._alphabet = Alphabet(self._labels)
        return self._alphabet

    @property
    def has_fixed_alphabet(self) -> bool:
        """Whether the alphabet was declared up front (vs. derived from edges).

        A fixed alphabet is part of the graph's semantics -- it constrains
        which queries parse -- so durable artifacts (snapshots) persist it.
        """
        return self._fixed_alphabet

    @property
    def uid(self) -> int:
        """A process-wide unique identifier of this graph instance.

        Two distinct :class:`GraphDB` objects never share a uid -- copies,
        subgraphs, deepcopies and unpickled graphs all mint fresh ones (see
        ``__setstate__``) -- so ``(uid, version)`` is a sound cache key for
        derived structures such as the engine's indexes and result caches,
        unlike ``id(graph)``, which can be reused after garbage collection.
        """
        return self._uid

    @property
    def version(self) -> int:
        """A counter incremented by every mutation (node or edge insertion).

        The engine layer tags indexes and cached query results with the
        version they were computed at and rebuilds them when it changes.
        """
        return self._version

    @property
    def nodes(self) -> frozenset[Node]:
        """The set of nodes."""
        return frozenset(self._nodes)

    @property
    def node_order(self) -> tuple[Node, ...]:
        """The nodes in their stable (insertion) order.

        Deterministic for a fixed construction sequence regardless of the
        process's hash seed, which makes it the canonical tie-breaking order
        for anything user-visible (e.g. the interactive strategies' random
        draws).
        """
        if self._node_order is None:
            self._node_order = tuple(self._nodes)
        return self._node_order

    @property
    def edges(self) -> frozenset[Edge]:
        """The set of ``(origin, label, end)`` edges."""
        return frozenset(self._edges)

    def node_count(self) -> int:
        """The number of nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """The number of edges."""
        return len(self._edges)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The uid must never travel with the state: a deepcopy or unpickle
        # produces a distinct graph object, and letting it inherit the uid
        # would alias the two in every (uid, version)-keyed cache.
        del state["_uid"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._uid = next(_GRAPH_UIDS)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"GraphDB(nodes={len(self._nodes)}, edges={len(self._edges)})"

    def has_edge(self, origin: Node, label: str, end: Node) -> bool:
        """Whether the given edge is present."""
        return (origin, label, end) in self._edges

    def labels(self) -> frozenset[str]:
        """The set of labels actually used by edges."""
        return frozenset(self._labels)

    @property
    def label_order(self) -> tuple[str, ...]:
        """The edge labels in their stable (first-use) order.

        Like :attr:`node_order`, deterministic for a fixed construction
        sequence regardless of the hash seed; it is the canonical label
        numbering of the engine's CSR indexes, chosen so that labels first
        used by later mutations are *appended* -- which is what lets an
        incremental index refresh extend the label tables in place.
        """
        return tuple(self._labels)

    # -- mutation delta log ---------------------------------------------------

    def _log_mutation(self, event: tuple) -> None:
        self._delta.append(event)
        overflow = len(self._delta) - DELTA_LOG_CAP
        if overflow > 0:
            del self._delta[:overflow]
            self._delta_base = self._version - DELTA_LOG_CAP

    def delta_since(self, version: int) -> list[tuple] | None:
        """The mutation events applied after ``version``, oldest first.

        Events are ``("node", node)`` and ``("edge", origin, label, end)``
        tuples, one per version increment, in application order (so an
        edge's endpoint-node events always precede the edge event).  Returns
        ``None`` when the log no longer reaches back to ``version`` (the cap
        dropped older entries) or ``version`` is from this graph's future --
        the caller must then fall back to a full rebuild.
        """
        if version < self._delta_base or version > self._version:
            return None
        return self._delta[version - self._delta_base :]

    # -- adjacency -----------------------------------------------------------

    def successors(self, node: Node, label: str | None = None) -> frozenset[Node]:
        """Nodes reachable from ``node`` by one edge (optionally of one label)."""
        self._require_node(node)
        by_label = self._forward.get(node, {})
        if label is not None:
            return frozenset(by_label.get(label, ()))
        result: set[Node] = set()
        for targets in by_label.values():
            result.update(targets)
        return frozenset(result)

    def predecessors(self, node: Node, label: str | None = None) -> frozenset[Node]:
        """Nodes with an edge (optionally of one label) into ``node``."""
        self._require_node(node)
        by_label = self._backward.get(node, {})
        if label is not None:
            return frozenset(by_label.get(label, ()))
        result: set[Node] = set()
        for sources in by_label.values():
            result.update(sources)
        return frozenset(result)

    def out_edges(self, node: Node) -> Iterator[tuple[str, Node]]:
        """Yield the ``(label, end)`` pairs of edges leaving ``node``."""
        self._require_node(node)
        for label, targets in self._forward.get(node, {}).items():
            for target in targets:
                yield label, target

    def in_edges(self, node: Node) -> Iterator[tuple[Node, str]]:
        """Yield the ``(origin, label)`` pairs of edges entering ``node``."""
        self._require_node(node)
        for label, sources in self._backward.get(node, {}).items():
            for source in sources:
                yield source, label

    def out_degree(self, node: Node) -> int:
        """The number of edges leaving ``node``."""
        self._require_node(node)
        return sum(len(targets) for targets in self._forward.get(node, {}).values())

    def in_degree(self, node: Node) -> int:
        """The number of edges entering ``node``."""
        self._require_node(node)
        return sum(len(sources) for sources in self._backward.get(node, {}).values())

    def outgoing_labels(self, node: Node) -> frozenset[str]:
        """The labels of edges leaving ``node``."""
        self._require_node(node)
        return frozenset(self._forward.get(node, {}).keys())

    def _require_node(self, node: Node) -> None:
        if node not in self._nodes:
            raise GraphError(f"node {node!r} is not in the graph")

    # -- neighborhoods and subgraphs ------------------------------------------

    def reachable_from(self, node: Node, *, max_hops: int | None = None) -> frozenset[Node]:
        """Nodes reachable from ``node`` following edges forward."""
        self._require_node(node)
        seen: set[Node] = {node}
        frontier: set[Node] = {node}
        hops = 0
        while frontier and (max_hops is None or hops < max_hops):
            next_frontier: set[Node] = set()
            for current in frontier:
                for _, target in self.out_edges(current):
                    if target not in seen:
                        seen.add(target)
                        next_frontier.add(target)
            frontier = next_frontier
            hops += 1
        return frozenset(seen)

    def neighborhood(self, node: Node, radius: int) -> "GraphDB":
        """The induced subgraph of nodes within ``radius`` hops of ``node``.

        Both edge directions are followed when measuring the radius; this is
        the "zoom out on the neighborhood" of step 4 of the interactive
        scenario (Figure 9), used to present a small visualizable fragment of
        the graph to the user.
        """
        self._require_node(node)
        if radius < 0:
            raise GraphError("radius must be non-negative")
        seen: set[Node] = {node}
        frontier: deque[tuple[Node, int]] = deque([(node, 0)])
        while frontier:
            current, distance = frontier.popleft()
            if distance >= radius:
                continue
            neighbours = set(self.successors(current)) | set(self.predecessors(current))
            for neighbour in neighbours:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append((neighbour, distance + 1))
        return self.subgraph(seen)

    def subgraph(self, nodes: Iterable[Node]) -> "GraphDB":
        """The subgraph induced by the given nodes."""
        keep = set(nodes)
        missing = keep - self._nodes.keys()
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(missing, key=repr)[:5]!r}")
        sub = GraphDB(self._alphabet if self._fixed_alphabet else None)
        # Insert in the parent's stable order so the subgraph's own stable
        # node order does not depend on the hash-seed-driven set iteration.
        sub.add_nodes(node for node in self._nodes if node in keep)
        for origin, label, end in self._edges:
            if origin in keep and end in keep:
                sub.add_edge(origin, label, end)
        return sub

    def copy(self) -> "GraphDB":
        """A deep copy of the graph."""
        other = GraphDB(self._alphabet if self._fixed_alphabet else None)
        other.add_nodes(self._nodes)
        other.add_edges(self._edges)
        return other

    def has_cycle_reachable_from(self, node: Node) -> bool:
        """Whether a cycle is reachable from ``node``.

        ``paths_G(nu)`` is infinite exactly when this holds (Section 2).
        Detected by an iterative DFS with colour marking over the reachable
        part of the graph.
        """
        self._require_node(node)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Node, int] = {}
        stack: list[tuple[Node, Iterator[Node]]] = []

        def neighbours(current: Node) -> Iterator[Node]:
            return iter(sorted(self.successors(current), key=repr))

        colour[node] = GREY
        stack.append((node, neighbours(node)))
        while stack:
            current, iterator = stack[-1]
            advanced = False
            for target in iterator:
                state = colour.get(target, WHITE)
                if state == GREY:
                    return True
                if state == WHITE:
                    colour[target] = GREY
                    stack.append((target, neighbours(target)))
                    advanced = True
                    break
            if not advanced:
                colour[current] = BLACK
                stack.pop()
        return False

    # -- conversions ----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, str, Node]],
        *,
        nodes: Iterable[Node] = (),
        alphabet: Alphabet | Iterable[str] | None = None,
    ) -> "GraphDB":
        """Build a graph from an iterable of edges (plus optional isolated nodes)."""
        graph = cls(alphabet)
        graph.add_nodes(nodes)
        graph.add_edges(edges)
        return graph

    def to_networkx(self):  # pragma: no cover - optional convenience
        """Convert to a ``networkx.MultiDiGraph`` (requires networkx)."""
        import networkx as nx

        nx_graph = nx.MultiDiGraph()
        nx_graph.add_nodes_from(self._nodes)
        for origin, label, end in self._edges:
            nx_graph.add_edge(origin, end, label=label)
        return nx_graph

    def degree_statistics(self) -> Mapping[str, float]:
        """Simple degree statistics used by the dataset generators' tests."""
        if not self._nodes:
            return {"max_out_degree": 0.0, "mean_out_degree": 0.0}
        degrees = [self.out_degree(node) for node in self._nodes]
        return {
            "max_out_degree": float(max(degrees)),
            "mean_out_degree": float(sum(degrees)) / len(degrees),
        }

    def label_histogram(self) -> dict[str, int]:
        """The number of edges per label (used to verify Zipfian skew)."""
        histogram: dict[str, int] = {}
        for _, label, _ in self._edges:
            histogram[label] = histogram.get(label, 0) + 1
        return histogram
