"""Serialization of graph databases.

Two plain-text formats are supported:

* *edge list* -- one ``origin<TAB>label<TAB>end`` triple per line, with
  ``#``-prefixed comment lines and a ``%node<TAB>name`` directive for
  isolated nodes;
* *JSON* -- a dictionary ``{"nodes": [...], "edges": [[origin, label, end], ...]}``.

Both round-trip exactly (node identifiers are kept as strings).  Edge-list
fields are backslash-escaped so that names containing tabs, newlines,
carriage returns or backslashes -- and names that would collide with the
``#`` comment or ``%node`` directive syntax -- survive the round-trip
instead of silently corrupting it.  Output order is the graph's stable
node/label order (insertion order), so rendering the same construction
sequence yields the same document on any machine and hash seed.

For large graphs, the storage layer's binary snapshots
(:mod:`repro.storage`) load orders of magnitude faster than re-parsing
these text formats; they remain the interchange and fixture formats.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.graphdb.graph import GraphDB

#: Escapes applied to every edge-list field (order matters: backslash first).
_FIELD_ESCAPES = (("\\", "\\\\"), ("\t", "\\t"), ("\n", "\\n"), ("\r", "\\r"))
_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r", "#": "#", "%": "%"}


def escape_field(text: str) -> str:
    for raw, escaped in _FIELD_ESCAPES:
        text = text.replace(raw, escaped)
    # A leading '#' would read back as a comment line, a leading '%' as a
    # directive; escape the first character so the field stays a field.
    if text[:1] in ("#", "%"):
        text = "\\" + text
    return text


def unescape_field(text: str, line_number: int) -> str:
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char != "\\":
            out.append(char)
            i += 1
            continue
        if i + 1 >= len(text):
            raise GraphError(f"dangling escape at end of field on line {line_number}")
        replacement = _UNESCAPES.get(text[i + 1])
        if replacement is None:
            raise GraphError(
                f"unknown escape '\\{text[i + 1]}' on line {line_number}"
            )
        out.append(replacement)
        i += 2
    return "".join(out)


def graph_to_edge_list(graph: GraphDB) -> str:
    """Render the graph as an edge-list document (stable order, escaped fields)."""
    lines = ["# repro graph database edge list"]
    node_pos = {node: position for position, node in enumerate(graph.node_order)}
    label_pos = {label: position for position, label in enumerate(graph.label_order)}
    connected = set()
    ordered = sorted(
        graph.edges,
        key=lambda edge: (node_pos[edge[0]], label_pos[edge[1]], node_pos[edge[2]]),
    )
    for origin, label, end in ordered:
        connected.add(origin)
        connected.add(end)
        lines.append(
            f"{escape_field(str(origin))}\t{escape_field(label)}\t{escape_field(str(end))}"
        )
    for node in graph.node_order:
        if node not in connected:
            lines.append(f"%node\t{escape_field(str(node))}")
    return "\n".join(lines) + "\n"


def graph_from_edge_list(text: str) -> GraphDB:
    """Parse an edge-list document into a graph."""
    graph = GraphDB()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if parts[0] == "%node":
            if len(parts) != 2:
                raise GraphError(f"malformed node directive on line {line_number}")
            graph.add_node(unescape_field(parts[1], line_number))
            continue
        if len(parts) != 3:
            raise GraphError(f"malformed edge on line {line_number}: {raw_line!r}")
        origin, label, end = (unescape_field(part, line_number) for part in parts)
        graph.add_edge(origin, label, end)
    return graph


def graph_to_json(graph: GraphDB) -> str:
    """Render the graph as a JSON document."""
    payload = {
        "nodes": sorted((str(node) for node in graph.nodes)),
        "edges": sorted(
            [str(origin), label, str(end)] for origin, label, end in graph.edges
        ),
    }
    return json.dumps(payload, indent=2)


def graph_from_json(text: str) -> GraphDB:
    """Parse a JSON document into a graph."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise GraphError(f"invalid JSON graph document: {error}") from error
    if not isinstance(payload, dict) or "edges" not in payload:
        raise GraphError("JSON graph document must contain an 'edges' list")
    graph = GraphDB()
    for node in payload.get("nodes", []):
        graph.add_node(node)
    for edge in payload["edges"]:
        if not isinstance(edge, (list, tuple)) or len(edge) != 3:
            raise GraphError(f"malformed edge entry: {edge!r}")
        origin, label, end = edge
        graph.add_edge(origin, label, end)
    return graph


def save_graph(graph: GraphDB, path: str | Path) -> None:
    """Save the graph to a file; format chosen from the extension (.json or .tsv)."""
    destination = Path(path)
    if destination.suffix == ".json":
        text = graph_to_json(graph)
    else:
        text = graph_to_edge_list(graph)
    destination.write_text(text, encoding="utf-8")


def load_graph(path: str | Path) -> GraphDB:
    """Load a graph from a file; format chosen from the extension (.json or .tsv)."""
    source = Path(path)
    text = source.read_text(encoding="utf-8")
    if source.suffix == ".json":
        return graph_from_json(text)
    return graph_from_edge_list(text)
