"""Serialization of graph databases.

Two plain-text formats are supported:

* *edge list* -- one ``origin<TAB>label<TAB>end`` triple per line, with
  ``#``-prefixed comment lines and a ``%node<TAB>name`` directive for
  isolated nodes;
* *JSON* -- a dictionary ``{"nodes": [...], "edges": [[origin, label, end], ...]}``.

Both round-trip exactly (node identifiers are kept as strings).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.graphdb.graph import GraphDB


def graph_to_edge_list(graph: GraphDB) -> str:
    """Render the graph as an edge-list document."""
    lines = ["# repro graph database edge list"]
    connected = set()
    for origin, label, end in sorted(graph.edges, key=repr):
        connected.add(origin)
        connected.add(end)
        lines.append(f"{origin}\t{label}\t{end}")
    for node in sorted(graph.nodes - connected, key=repr):
        lines.append(f"%node\t{node}")
    return "\n".join(lines) + "\n"


def graph_from_edge_list(text: str) -> GraphDB:
    """Parse an edge-list document into a graph."""
    graph = GraphDB()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if parts[0] == "%node":
            if len(parts) != 2:
                raise GraphError(f"malformed node directive on line {line_number}")
            graph.add_node(parts[1])
            continue
        if len(parts) != 3:
            raise GraphError(f"malformed edge on line {line_number}: {raw_line!r}")
        origin, label, end = parts
        graph.add_edge(origin, label, end)
    return graph


def graph_to_json(graph: GraphDB) -> str:
    """Render the graph as a JSON document."""
    payload = {
        "nodes": sorted((str(node) for node in graph.nodes)),
        "edges": sorted(
            [str(origin), label, str(end)] for origin, label, end in graph.edges
        ),
    }
    return json.dumps(payload, indent=2)


def graph_from_json(text: str) -> GraphDB:
    """Parse a JSON document into a graph."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise GraphError(f"invalid JSON graph document: {error}") from error
    if not isinstance(payload, dict) or "edges" not in payload:
        raise GraphError("JSON graph document must contain an 'edges' list")
    graph = GraphDB()
    for node in payload.get("nodes", []):
        graph.add_node(node)
    for edge in payload["edges"]:
        if not isinstance(edge, (list, tuple)) or len(edge) != 3:
            raise GraphError(f"malformed edge entry: {edge!r}")
        origin, label, end = edge
        graph.add_edge(origin, label, end)
    return graph


def save_graph(graph: GraphDB, path: str | Path) -> None:
    """Save the graph to a file; format chosen from the extension (.json or .tsv)."""
    destination = Path(path)
    if destination.suffix == ".json":
        text = graph_to_json(graph)
    else:
        text = graph_to_edge_list(graph)
    destination.write_text(text, encoding="utf-8")


def load_graph(path: str | Path) -> GraphDB:
    """Load a graph from a file; format chosen from the extension (.json or .tsv)."""
    source = Path(path)
    text = source.read_text(encoding="utf-8")
    if source.suffix == ".json":
        return graph_from_json(text)
    return graph_from_edge_list(text)
