"""Per-tenant service state: admission control and interactive sessions.

The daemon serves many tenants from shared per-snapshot engines, so the two
things that must *not* be shared live here:

* :class:`AdmissionController` -- bounded concurrency.  A request is
  admitted only while the global in-flight count is under
  ``max_concurrent`` *and* the requesting tenant is under its own
  ``per_tenant`` cap; otherwise it is shed immediately with a structured
  429-style :class:`~repro.errors.OverloadedError`.  The per-tenant cap is
  what keeps one chatty tenant from starving the rest.

* :class:`SessionTable` -- interactive learning sessions, keyed by
  ``(tenant, session name)``.  A session is stored as its
  :class:`~repro.interactive.InteractiveCheckpoint` payload (the PR-4
  resume machinery), so it survives between requests without pinning any
  live object, and the keying means one tenant can never resume -- or even
  observe -- another tenant's session.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import OverloadedError, ServiceError


class AdmissionController:
    """Global + per-tenant in-flight caps with immediate load-shedding."""

    def __init__(self, *, max_concurrent: int, per_tenant: int, registry=None) -> None:
        self.max_concurrent = max_concurrent
        self.per_tenant = per_tenant
        self._lock = threading.Lock()
        self._inflight_total = 0
        self._inflight: dict[str, int] = {}
        self._registry = registry
        self._tenant_sheds: dict[str, object] = {}
        if registry is not None:
            self._gauge = registry.gauge(
                "service_inflight", help="requests currently admitted and executing"
            )
            self._shed = registry.counter(
                "service_shed_total", help="requests shed by admission control"
            )
        else:
            self._gauge = self._shed = None

    def _count_shed(self, tenant: str) -> None:
        """Bump the total and the shed tenant's labeled series."""
        if self._shed is None:
            return
        self._shed.inc()
        counter = self._tenant_sheds.get(tenant)
        if counter is None:
            counter = self._registry.counter(
                "service_admission_sheds_total",
                help="requests shed by admission control, per tenant",
                labels={"tenant": tenant},
            )
            self._tenant_sheds[tenant] = counter
        counter.inc()

    @contextmanager
    def admit(self, tenant: str):
        """Hold one admission slot for ``tenant`` (or shed with a 429)."""
        with self._lock:
            if self._inflight_total >= self.max_concurrent:
                self._count_shed(tenant)
                raise OverloadedError(
                    f"server at max_concurrent={self.max_concurrent} in-flight "
                    "requests; retry later"
                )
            tenant_inflight = self._inflight.get(tenant, 0)
            if tenant_inflight >= self.per_tenant:
                self._count_shed(tenant)
                raise OverloadedError(
                    f"tenant {tenant!r} at its per_tenant={self.per_tenant} "
                    "in-flight cap; retry later"
                )
            self._inflight_total += 1
            self._inflight[tenant] = tenant_inflight + 1
            if self._gauge is not None:
                self._gauge.inc()
        try:
            yield
        finally:
            with self._lock:
                self._inflight_total -= 1
                remaining = self._inflight[tenant] - 1
                if remaining:
                    self._inflight[tenant] = remaining
                else:
                    del self._inflight[tenant]
            if self._gauge is not None:
                self._gauge.dec()

    def snapshot(self) -> dict:
        """Current admission state (for the ``stats`` op)."""
        with self._lock:
            return {
                "inflight": self._inflight_total,
                "max_concurrent": self.max_concurrent,
                "per_tenant_cap": self.per_tenant,
                "tenants_active": len(self._inflight),
            }


class SessionTable:
    """Interactive-session checkpoints, isolated per tenant."""

    def __init__(self, *, max_sessions_per_tenant: int = 16, registry=None) -> None:
        self.max_sessions_per_tenant = max_sessions_per_tenant
        self._lock = threading.Lock()
        self._sessions: dict[str, dict[str, dict]] = {}
        self._session_locks: dict[tuple[str, str], threading.Lock] = {}
        if registry is not None:
            self._gauge = registry.gauge(
                "service_sessions", help="interactive sessions currently checkpointed"
            )
        else:
            self._gauge = None

    def lock_for(self, tenant: str, name: str) -> threading.Lock:
        """The lock serializing one session's resume-run-checkpoint cycle.

        Interactive requests are read-modify-write on the checkpoint;
        without per-session exclusion two concurrent calls of the same
        tenant would both resume the same state and one update would be
        lost.  Different sessions (and different tenants) stay parallel.
        """
        with self._lock:
            return self._session_locks.setdefault((tenant, name), threading.Lock())

    def get(self, tenant: str, name: str) -> dict | None:
        """The stored checkpoint payload, or None for a fresh session."""
        with self._lock:
            entry = self._sessions.get(tenant, {}).get(name)
            # A private copy: the caller feeds it to checkpoint resume and
            # must not be able to corrupt the table through aliasing.
            return dict(entry) if entry is not None else None

    def put(self, tenant: str, name: str, checkpoint: dict) -> None:
        """Store (replace) a session's checkpoint for its tenant."""
        with self._lock:
            table = self._sessions.setdefault(tenant, {})
            if name not in table and len(table) >= self.max_sessions_per_tenant:
                raise ServiceError(
                    f"tenant {tenant!r} at its {self.max_sessions_per_tenant}-session "
                    "cap; release one first",
                    code="session_limit",
                    status=429,
                )
            created = name not in table
            table[name] = dict(checkpoint)
            if created and self._gauge is not None:
                self._gauge.inc()

    def release(self, tenant: str, name: str) -> bool:
        """Drop a session; False when the tenant had none of that name."""
        with self._lock:
            table = self._sessions.get(tenant)
            if table is None or name not in table:
                return False
            del table[name]
            if not table:
                del self._sessions[tenant]
            self._session_locks.pop((tenant, name), None)
        if self._gauge is not None:
            self._gauge.dec()
        return True

    def names(self, tenant: str) -> list[str]:
        """The requesting tenant's own session names (never anyone else's)."""
        with self._lock:
            return sorted(self._sessions.get(tenant, {}))

    def total(self) -> int:
        """Sessions stored across all tenants (an aggregate, no names)."""
        with self._lock:
            return sum(len(table) for table in self._sessions.values())
