"""The query service's wire protocol: newline-delimited JSON frames.

One frame is one JSON document terminated by ``\\n`` -- trivially parseable
from any language, stream-framed without length prefixes, and directly
reusing the library's JSON envelopes.  Requests look like::

    {"id": 7, "op": "query", "tenant": "acme", "params": {"expr": "a.b*"}}

and responses mirror the CLI envelope, carrying the uniform
:class:`~repro.api.result.Result` ``to_dict`` payload under ``result`` (so
:func:`~repro.api.result.result_from_dict` rebuilds the typed object
client-side via the type-tag dispatch)::

    {"id": 7, "ok": true, "op": "query", "elapsed": 0.004, "result": {...}}
    {"id": 7, "ok": false, "op": "query",
     "error": {"type": "OverloadedError", "code": "overloaded",
               "status": 429, "message": "..."}}

``status`` is the HTTP-flavoured numeric code clients key backoff and retry
policies on (429 = shed, retry later; 4xx = don't retry; 5xx = server
fault).  Frames larger than the negotiated ``max_frame_bytes`` are rejected
with a 413-style ``too_large`` error *without* desynchronizing the stream:
:func:`read_frame` drains the oversized line to the next newline so the
connection keeps working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import OverloadedError, ProtocolError, ServiceError

#: Default per-frame size cap (requests and responses alike).
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: The operations a server understands (``parse_request`` rejects others).
OPS = (
    "ping",
    "query",
    "learn",
    "interactive",
    "session.release",
    "stats",
    "metrics",
    "catalog",
    "shutdown",
)

#: Default tenant for clients that do not name one.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class Request:
    """One validated request frame.

    ``trace`` is the optional distributed-tracing context in wire form
    (``{"trace_id": ..., "parent_span": ..., "tenant": ...}`` -- see
    :class:`~repro.telemetry.tracing.TraceContext`).  It is kept as the
    validated plain dict here so the protocol layer stays free of
    telemetry imports; the server promotes it to a ``TraceContext``.
    """

    id: int | str | None
    op: str
    tenant: str = DEFAULT_TENANT
    params: dict = field(default_factory=dict)
    trace: dict | None = None


def encode_frame(payload: dict, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload as a newline-terminated JSON frame."""
    frame = json.dumps(payload, separators=(",", ":"), sort_keys=False).encode("utf-8") + b"\n"
    if len(frame) > max_bytes:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds the {max_bytes}-byte limit",
            code="too_large",
            status=413,
        )
    return frame


def decode_frame(line: bytes) -> dict:
    """Parse one received line into its payload dict."""
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def read_frame(stream, *, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read the next frame from a buffered binary stream.

    Returns None on a clean EOF.  An oversized line is drained up to its
    terminating newline (keeping the stream framed) and then rejected with
    a 413-style :class:`~repro.errors.ProtocolError`.
    """
    line = stream.readline(max_bytes + 1)
    if not line:
        return None
    if len(line) > max_bytes:
        drained = line.endswith(b"\n")
        while not drained:
            chunk = stream.readline(max_bytes + 1)
            drained = not chunk or chunk.endswith(b"\n")
        raise ProtocolError(
            f"frame exceeds the {max_bytes}-byte limit", code="too_large", status=413
        )
    return decode_frame(line)


def parse_request(payload: dict) -> Request:
    """Validate a request payload into a :class:`Request`."""
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {sorted(OPS)}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError(f"request id must be an int or string, got {request_id!r}")
    tenant = payload.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(f"tenant must be a non-empty string, got {tenant!r}")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    trace = payload.get("trace")
    if trace is not None:
        if not isinstance(trace, dict):
            raise ProtocolError(
                f"trace must be an object, got {type(trace).__name__}"
            )
        trace_id = trace.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ProtocolError(
                f"trace.trace_id must be a non-empty string, got {trace_id!r}"
            )
        parent_span = trace.get("parent_span")
        if parent_span is not None and not isinstance(parent_span, str):
            raise ProtocolError(
                f"trace.parent_span must be a string, got {parent_span!r}"
            )
        trace_tenant = trace.get("tenant")
        if trace_tenant is not None and not isinstance(trace_tenant, str):
            raise ProtocolError(
                f"trace.tenant must be a string, got {trace_tenant!r}"
            )
    return Request(id=request_id, op=op, tenant=tenant, params=params, trace=trace)


def ok_response(request: Request, result: dict, *, elapsed: float, **extra) -> dict:
    """A success envelope (``result`` is a ``Result.to_dict()``-style dict).

    When the request carried a ``trace`` context, the envelope echoes it
    back (possibly enriched by the server), so the client can log the
    trace id next to its own span without a side channel.
    """
    envelope = {"id": request.id, "ok": True, "op": request.op, "elapsed": elapsed}
    if request.trace is not None:
        envelope["trace"] = request.trace
    envelope.update(extra)
    envelope["result"] = result
    return envelope


def error_response(
    request_id: int | str | None,
    error: Exception,
    *,
    op: str | None = None,
    trace: dict | None = None,
) -> dict:
    """A structured error envelope for any exception.

    ``trace`` echoes the request's trace context when known, so failed
    requests stay joinable to their distributed trace too.
    """
    if isinstance(error, ServiceError):
        code, status = error.code, error.status
    else:
        code, status = "internal", 500
    envelope = {
        "id": request_id,
        "ok": False,
        "op": op,
        "error": {
            "type": type(error).__name__,
            "code": code,
            "status": status,
            "message": str(error),
        },
    }
    if trace is not None:
        envelope["trace"] = trace
    return envelope


def raise_for_error(envelope: dict) -> dict:
    """Client side: re-raise a failed envelope as a typed exception.

    Returns the envelope unchanged when ``ok`` is true.  The raised
    exception carries the server's ``code``/``status``, so retry policies
    written against local exceptions work unchanged against remote ones.
    """
    if envelope.get("ok"):
        return envelope
    detail = envelope.get("error") or {}
    code = detail.get("code", "internal")
    status = detail.get("status", 500)
    message = detail.get("message", "request failed")
    if code == "overloaded":
        raise OverloadedError(message)
    if int(status) // 100 == 4:
        raise ProtocolError(message, code=code, status=status)
    raise ServiceError(message, code=code, status=status)
