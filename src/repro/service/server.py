"""The ``repro serve`` daemon: one catalog of hot snapshots, many clients.

A :class:`QueryService` opens a :class:`~repro.storage.DatasetCatalog`
once, builds one shared :class:`~repro.api.Workspace` (engine + frozen
:class:`~repro.storage.GraphView`) per snapshot, and serves the newline-
delimited JSON protocol of :mod:`repro.service.protocol` over a plain TCP
socket -- one reader thread per connection, which is the right shape for a
synchronous engine (requests block in kernel code, not in an event loop).

Sharing one engine per snapshot is what makes the daemon economical: the
result cache is keyed by ``(operation, plan fingerprint, graph uid,
graph version)``, so a query answered for one tenant is a cache hit for
every other tenant asking the same thing of the same snapshot -- results
are immutable node sets, never tenant data.  What *is* per-tenant
(interactive sessions, in-flight caps) lives in
:mod:`repro.service.session`; single-query traffic is coalesced by the
:mod:`repro.service.batching` micro-batcher into
:meth:`~repro.engine.QueryEngine.evaluate_many` calls.

Observability: the server keeps a :class:`~repro.telemetry.MetricsRegistry`
of request/shed/batch/latency instruments, serves its Prometheus text over
``GET /metrics`` when ``metrics_port`` is set, and writes it to
``metrics_path`` on shutdown.

With ``trace_path`` set the daemon participates in distributed traces:
every request opens a ``server.request`` span under the client-supplied
:class:`~repro.telemetry.TraceContext` (or a freshly minted one), every
dataset engine shares the server's rotating trace sink, and shard workers'
span records merge into it too -- one JSONL file reconstructs the whole
cross-process tree (``repro trace --id``).  ``slow_log_path`` adds the
slow-query log: any query over ``slow_query_seconds`` is written out with
its profile and plan explanation (``repro slow``).  Per-tenant counters
(queries, errors, sheds, cache hits, kernel work, wall time) aggregate on
labeled series and in the ``stats`` op's ``tenants`` table.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.api.config import InteractiveConfig, LearnerConfig, ServiceConfig
from repro.api.result import QueryResult
from repro.api.workspace import Workspace
from repro.errors import (
    ConfigError,
    OverloadedError,
    ProtocolError,
    ReproError,
    ServiceError,
    StorageError,
)
from repro.learning.sample import BinarySample, Sample
from repro.queries.path_query import PathQuery
from repro.service import protocol
from repro.service.batching import MicroBatcher
from repro.service.session import AdmissionController, SessionTable
from repro.storage.catalog import BUILTIN_DATASETS, DatasetCatalog
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import TraceContext, TraceSink

#: Latency buckets for the request histogram (seconds).
_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: The per-tenant accounting table's counters and their labeled series.
# Ops charged to the per-tenant accounting table.  Health checks and the
# observability ops (stats/metrics/catalog) are free: charging a tenant for
# *reading* its bill would make the table drift under monitoring traffic.
_ACCOUNTED_OPS = frozenset({"query", "learn", "interactive", "session.release"})

_TENANT_SERIES = {
    "queries": ("service_tenant_queries_total", "requests received per tenant"),
    "errors": ("service_tenant_errors_total", "error envelopes per tenant"),
    "sheds": ("service_tenant_sheds_total", "overload sheds per tenant"),
    "cache_hits": (
        "service_tenant_cache_hits_total",
        "result-cache hits served per tenant",
    ),
    "kernel_units": (
        "service_tenant_kernel_units_total",
        "kernel states expanded on behalf of each tenant",
    ),
    "wall_milliseconds": (
        "service_tenant_wall_milliseconds_total",
        "request wall time per tenant (integer milliseconds)",
    ),
}


class _Dataset:
    """One hot snapshot: its frozen view and the tenant-shared engine."""

    __slots__ = ("name", "workspace")

    def __init__(self, name: str, workspace: Workspace) -> None:
        self.name = name
        self.workspace = workspace

    @property
    def graph(self):
        return self.workspace.graph

    @property
    def engine(self):
        return self.workspace.engine


class QueryService:
    """The long-running daemon behind ``repro serve``."""

    def __init__(self, config: ServiceConfig | None = None, *, catalog=None) -> None:
        self.config = config or ServiceConfig()
        self.catalog: DatasetCatalog = (
            catalog if catalog is not None else self.config.catalog()
        )
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "service_requests_total", help="requests received (any op, any outcome)"
        )
        self._errors = self.registry.counter(
            "service_errors_total", help="requests answered with an error envelope"
        )
        self._latency = self.registry.histogram(
            "service_request_seconds",
            buckets=_LATENCY_BUCKETS,
            help="wall-clock seconds per request, admission to response",
        )
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            per_tenant=self.config.per_tenant,
            registry=self.registry,
        )
        self.sessions = SessionTable(
            max_sessions_per_tenant=self.config.max_sessions_per_tenant,
            registry=self.registry,
        )
        self.batcher = MicroBatcher(
            batch_window=self.config.batch_window,
            batch_max=self.config.batch_max,
            queue_depth=self.config.queue_depth,
            registry=self.registry,
        )
        # Distributed tracing: the server owns the rotating sink; every
        # dataset engine borrows it (Telemetry(sink=...)), so client,
        # server, engine and shard-worker spans land in one file.
        self.telemetry = Telemetry(
            trace_path=self.config.trace_path, registry=self.registry
        )
        self._slow_log = (
            TraceSink(self.config.slow_log_path)
            if self.config.slow_log_path is not None
            else None
        )
        self._tenants: dict[str, dict[str, float]] = {}
        self._tenants_lock = threading.Lock()
        self._tenant_counters: dict[tuple[str, str], object] = {}
        self._datasets: dict[str, _Dataset] = {}
        self._datasets_lock = threading.Lock()
        self._ops_lock = threading.Lock()
        self._ops: dict[str, int] = {}
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._stop = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = threading.Event()
        self._threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._metrics_server = None
        self._metrics_address: tuple[str, int] | None = None
        self.registry.callback(
            "service_datasets", lambda: float(len(self._datasets)),
            help="snapshots currently open and serving",
        )

    # -- datasets ------------------------------------------------------------

    def _open_dataset(self, name: str) -> _Dataset:
        """Open (and cache) the named catalog snapshot as a hot dataset."""
        with self._datasets_lock:
            dataset = self._datasets.get(name)
            if dataset is not None:
                return dataset
            if name not in self.catalog and name in BUILTIN_DATASETS:
                self.catalog.ensure(name)
            try:
                view = self.catalog.open_view(name)
            except StorageError as error:
                raise ServiceError(str(error), code="not_found", status=404) from error
            # Each engine needs its own registry (engine counter names
            # collide across datasets) but shares the server's trace sink;
            # the slow-query log needs per-query profiles, so it turns
            # profiling on for every dataset engine.
            engine_telemetry = None
            if self.telemetry.enabled or self._slow_log is not None:
                engine_telemetry = Telemetry(
                    enabled=self.telemetry.enabled,
                    sink=self.telemetry.sink,
                    profile=self._slow_log is not None,
                )
            workspace = Workspace(
                view,
                engine_config=self.config.engine_config(),
                telemetry=engine_telemetry,
                name=name,
            )
            # Two catalog names backed by byte-identical snapshots share one
            # plan/result cache pair, so a plan compiled (or a result cached)
            # for one tenant's dataset pays for every alias of those bytes.
            content_uid = getattr(view, "content_uid", None)
            if self.config.share_caches and content_uid is not None:
                workspace.engine.adopt_shared_caches(content_uid)
            dataset = _Dataset(name, workspace)
            self._datasets[name] = dataset
            return dataset

    def _resolve_dataset(self, params: dict) -> _Dataset:
        name = params.get("snapshot") or self.default_snapshot
        if name is None:
            raise ProtocolError(
                "no snapshot named and the server has no default; pass params.snapshot"
            )
        if not isinstance(name, str):
            raise ProtocolError(f"snapshot must be a name string, got {name!r}")
        return self._open_dataset(name)

    @property
    def default_snapshot(self) -> str | None:
        if self.config.default_snapshot is not None:
            return self.config.default_snapshot
        preload = self.config.snapshots
        return preload[0] if preload else None

    def dataset_names(self) -> list[str]:
        with self._datasets_lock:
            return sorted(self._datasets)

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise ServiceError("service is not started")
        return self._address

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The metrics HTTP endpoint's ``(host, port)``, when enabled."""
        return self._metrics_address

    def start(self) -> tuple[str, int]:
        """Preload snapshots, bind the socket, start accepting. Returns the address."""
        names = self.config.snapshots or tuple(self.catalog.names())
        for name in names:
            self._open_dataset(name)
        self.batcher.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        acceptor = threading.Thread(target=self._accept_loop, name="repro-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        if self.config.metrics_port is not None:
            self._start_metrics_endpoint()
        return self._address

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (or a remote shutdown op)."""
        self._stop.wait()

    def shutdown(self) -> None:
        """Stop accepting, drain the batcher, close connections (idempotent).

        Safe to call from several threads: the first caller does the work,
        later callers block until teardown (including the metrics-file
        write) has actually completed.
        """
        with self._shutdown_lock:
            first = not self._stop.is_set()
            if first:
                self._stop.set()
        if not first:
            self._shutdown_done.wait(timeout=30.0)
            return
        try:
            self._do_shutdown()
        finally:
            self._shutdown_done.set()

    def _do_shutdown(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self.batcher.stop()
        if self._metrics_server is not None:
            self._metrics_server.shutdown()
            self._metrics_server.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.telemetry.close()
        if self._slow_log is not None:
            self._slow_log.close()
        if self.config.metrics_path is not None:
            from pathlib import Path

            Path(self.config.metrics_path).write_text(self.metrics_text(), encoding="utf-8")

    def __enter__(self) -> "QueryService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- the socket front-end ------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                connection, _peer = self._listener.accept()
            except OSError:  # listener closed by shutdown
                return
            with self._connections_lock:
                self._connections.add(connection)
            handler = threading.Thread(
                target=self._connection_loop, args=(connection,), daemon=True
            )
            handler.start()

    def _connection_loop(self, connection: socket.socket) -> None:
        reader = connection.makefile("rb")
        try:
            while not self._stop.is_set():
                try:
                    payload = protocol.read_frame(
                        reader, max_bytes=self.config.max_frame_bytes
                    )
                except ProtocolError as error:
                    # The stream is still framed (read_frame drained the
                    # line), so reject the frame and keep the connection.
                    self._errors.inc()
                    self._send(connection, protocol.error_response(None, error))
                    continue
                if payload is None:
                    return
                response = self.handle(payload)
                self._send(connection, response)
        except OSError:
            return  # peer went away (or shutdown closed the socket)
        finally:
            reader.close()
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:
                pass

    def _send(self, connection: socket.socket, response: dict) -> None:
        try:
            frame = protocol.encode_frame(
                response, max_bytes=self.config.max_frame_bytes
            )
        except ProtocolError as error:  # response itself oversized
            frame = protocol.encode_frame(
                protocol.error_response(response.get("id"), error, op=response.get("op"))
            )
        connection.sendall(frame)

    # -- request handling ----------------------------------------------------

    def handle(self, payload: dict) -> dict:
        """Execute one request payload and return its response envelope.

        This is the whole server minus the socket, which is what the tests
        and the in-process client paths use directly.
        """
        self._requests.inc()
        started = time.perf_counter()
        request_id = payload.get("id") if isinstance(payload, dict) else None
        op = payload.get("op") if isinstance(payload, dict) else None
        tenant = payload.get("tenant") if isinstance(payload, dict) else None
        trace_echo: dict | None = None
        try:
            request = protocol.parse_request(payload)
            tenant = request.tenant
            with self._ops_lock:
                self._ops[request.op] = self._ops.get(request.op, 0) + 1
            ctx = self._trace_context(request)
            trace_echo = ctx.to_dict() if ctx is not None else request.trace
            result, extra = self._handle_traced(request, ctx)
            elapsed = time.perf_counter() - started
            self._latency.observe(elapsed)
            if request.op in _ACCOUNTED_OPS:
                self._tenant_account(
                    tenant, queries=1, wall_milliseconds=int(elapsed * 1000)
                )
            if trace_echo is not None:
                extra = {**extra, "trace": trace_echo}
            return protocol.ok_response(
                request, result, elapsed=elapsed, **extra
            )
        except (ReproError, OSError) as error:
            elapsed = time.perf_counter() - started
            self._errors.inc()
            self._latency.observe(elapsed)
            sheds = 1 if isinstance(error, OverloadedError) else 0
            if op in _ACCOUNTED_OPS:
                self._tenant_account(
                    tenant if isinstance(tenant, str) else None,
                    queries=1,
                    errors=1,
                    sheds=sheds,
                    wall_milliseconds=int(elapsed * 1000),
                )
            return protocol.error_response(
                request_id, self._map_error(error), op=op, trace=trace_echo
            )

    def _trace_context(self, request: protocol.Request) -> TraceContext | None:
        """The request's trace context (wire-supplied or server-minted).

        None when tracing is off -- untraced serving carries no context
        anywhere.  A request that arrives without one, on a tracing
        server, gets a root context so purely server-side spans are still
        joinable by trace id.
        """
        if self.telemetry.tracer is None:
            return None
        if request.trace is not None:
            ctx = TraceContext.from_dict(request.trace)
            if ctx.tenant is None:
                ctx = TraceContext(
                    trace_id=ctx.trace_id,
                    parent_span=ctx.parent_span,
                    tenant=request.tenant,
                )
            return ctx
        return TraceContext.mint(tenant=request.tenant)

    def _handle_traced(
        self, request: protocol.Request, ctx: TraceContext | None
    ) -> tuple[dict, dict]:
        """Admit and dispatch one parsed request, under its span when tracing.

        The ``server.request`` span carries the wire request ``id`` (so
        wire ids and trace ids join in the trace file) and parents every
        downstream span: the ops receive a child context re-parented onto
        it, which they attach around engine work and ship to the batcher
        and shard workers.
        """
        tracer = self.telemetry.tracer
        if tracer is None or ctx is None:
            if request.op == "ping":  # never shed a health check
                return self._op_ping(request, None)
            with self.admission.admit(request.tenant):
                return self._dispatch(request, None)
        with tracer.context(ctx):
            with tracer.span(
                "server.request",
                op=request.op,
                tenant=request.tenant,
                request=request.id,
            ) as span:
                child = ctx.child(tracer.span_ref(span))
                if request.op == "ping":
                    return self._op_ping(request, child)
                with self.admission.admit(request.tenant):
                    return self._dispatch(request, child)

    def _tenant_account(self, tenant: str | None, **deltas: int) -> None:
        """Add per-tenant counter deltas (stats table + labeled series)."""
        if not tenant:
            return
        with self._tenants_lock:
            entry = self._tenants.setdefault(
                tenant, {key: 0 for key in _TENANT_SERIES}
            )
            for key, amount in deltas.items():
                entry[key] += amount
        for key, amount in deltas.items():
            if not amount:
                continue
            series_key = (key, tenant)
            counter = self._tenant_counters.get(series_key)
            if counter is None:
                name, help_text = _TENANT_SERIES[key]
                counter = self.registry.counter(
                    name, help=help_text, labels={"tenant": tenant}
                )
                self._tenant_counters[series_key] = counter
            counter.inc(amount)

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        """The per-tenant accounting table (sorted copy)."""
        with self._tenants_lock:
            return {
                tenant: dict(self._tenants[tenant])
                for tenant in sorted(self._tenants)
            }

    @staticmethod
    def _map_error(error: Exception) -> Exception:
        if isinstance(error, ServiceError):
            return error
        if isinstance(error, (ConfigError, ProtocolError)) or type(error).__name__ in (
            "RegexSyntaxError",
            "QueryError",
            "SampleError",
            "AlphabetError",
        ):
            return ProtocolError(str(error))
        if isinstance(error, StorageError):
            return ServiceError(str(error), code="not_found", status=404)
        return ServiceError(str(error), code="internal", status=500)

    def _dispatch(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        handler = {
            "query": self._op_query,
            "learn": self._op_learn,
            "interactive": self._op_interactive,
            "session.release": self._op_session_release,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "catalog": self._op_catalog,
            "shutdown": self._op_shutdown,
        }[request.op]
        return handler(request, trace)

    # -- ops -----------------------------------------------------------------

    def _op_ping(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        return {"type": "Pong", "ok": True}, {}

    def _op_query(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        params = request.params
        expr = params.get("expr")
        if not isinstance(expr, str) or not expr:
            raise ProtocolError("query needs params.expr (the expression string)")
        semantics = params.get("semantics", "path")
        if semantics not in ("path", "binary"):
            raise ProtocolError(f"semantics must be 'path' or 'binary', got {semantics!r}")
        dataset = self._resolve_dataset(params)
        started = time.perf_counter()
        # Best-effort per-tenant work attribution: deltas of the shared
        # engine's counters around this call.  Concurrent queries on the
        # same dataset can bleed into each other's deltas; totals across
        # tenants stay exact, which is what capacity accounting needs.
        before = dataset.engine.stats_snapshot()
        if semantics == "binary":
            # Pair selection has no batch kernel; answer it directly (the
            # shared result cache still applies).
            with dataset.workspace.telemetry.context(trace):
                result = dataset.workspace.query(expr, semantics="binary")
            self._account_query(request, dataset, before)
            self._maybe_log_slow(
                request, dataset, expr, semantics, result.elapsed, trace,
                profile=result.profile,
            )
            return result.to_dict(), {"snapshot": dataset.name}
        query = PathQuery.parse(expr, dataset.graph.alphabet)
        selected = self.batcher.submit(
            dataset, query, timeout=self.config.request_timeout, trace=trace
        )
        elapsed = time.perf_counter() - started
        result = QueryResult(
            query=query,
            semantics="path",
            selected=selected,
            elapsed=elapsed,
        )
        self._account_query(request, dataset, before)
        self._maybe_log_slow(
            request, dataset, expr, semantics, elapsed, trace,
            profile=dataset.engine.take_profile(),
        )
        return result.to_dict(), {"snapshot": dataset.name}

    def _account_query(
        self, request: protocol.Request, dataset: _Dataset, before: dict
    ) -> None:
        """Charge the engine-counter deltas of one query to its tenant."""
        after = dataset.engine.stats_snapshot()

        def delta(key: str) -> int:
            return max(0, int(after.get(key, 0)) - int(before.get(key, 0)))

        self._tenant_account(
            request.tenant,
            cache_hits=delta("result_cache_hits"),
            kernel_units=delta("states_expanded"),
        )

    def _maybe_log_slow(
        self,
        request: protocol.Request,
        dataset: _Dataset,
        expr: str,
        semantics: str,
        elapsed: float,
        trace: TraceContext | None,
        *,
        profile: dict | None,
    ) -> None:
        """Append one slow-query record when the threshold is exceeded.

        The record bundles everything the debugging loop needs: identity
        (timestamp, tenant, wire id, trace id), the query, its latency,
        the captured :class:`~repro.telemetry.QueryProfile`, and the
        planner's explanation (computed here, only for slow queries --
        ``explain`` never runs a kernel, so it is cheap relative to the
        query that just blew the threshold).
        """
        if self._slow_log is None or elapsed < self.config.slow_query_seconds:
            return
        record = {
            "ts": time.time(),
            "tenant": request.tenant,
            "request": request.id,
            "snapshot": dataset.name,
            "expr": expr,
            "semantics": semantics,
            "elapsed": round(elapsed, 9),
            "threshold": self.config.slow_query_seconds,
            "trace": trace.trace_id if trace is not None else None,
        }
        if profile is not None:
            record["profile"] = profile
        try:
            record["explain"] = dataset.workspace.explain(
                expr, semantics=semantics
            ).to_dict()
        except ReproError:  # the query itself succeeded; keep the record
            record["explain"] = None
        self._slow_log.write(record)

    def _op_learn(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        params = request.params
        dataset = self._resolve_dataset(params)
        config = LearnerConfig.from_dict(params.get("config") or {})
        positives = params.get("positives") or []
        negatives = params.get("negatives") or []
        if config.semantics == "binary":
            sample: Sample | BinarySample = BinarySample(
                [tuple(pair) for pair in positives],
                [tuple(pair) for pair in negatives],
            )
        elif config.semantics == "path":
            sample = Sample(list(positives), list(negatives))
        else:
            raise ProtocolError(
                f"the service supports 'path' and 'binary' learning, got {config.semantics!r}"
            )
        with dataset.workspace.telemetry.context(trace):
            result = dataset.workspace.learn(sample, config)
        return result.to_dict(), {"snapshot": dataset.name}

    def _op_interactive(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        params = request.params
        dataset = self._resolve_dataset(params)
        goal = params.get("goal")
        if not isinstance(goal, str) or not goal:
            raise ProtocolError("interactive needs params.goal (the goal expression)")
        config = InteractiveConfig.from_dict(params.get("config") or {})
        name = params.get("session")
        if name is not None and (not isinstance(name, str) or not name):
            raise ProtocolError(f"session must be a non-empty name, got {name!r}")
        extra: dict = {"snapshot": dataset.name}
        if name is None:
            with dataset.workspace.telemetry.context(trace):
                result = dataset.workspace.interactive_session(goal, config).run()
            return result.to_dict(), extra
        # Resume-run-checkpoint is read-modify-write on the stored session:
        # serialize it per (tenant, session) so concurrent calls of the
        # same tenant chain instead of losing each other's interactions.
        with self.sessions.lock_for(request.tenant, name):
            checkpoint = self.sessions.get(request.tenant, name)
            session = dataset.workspace.interactive_session(
                goal, config, resume_from=checkpoint
            )
            with dataset.workspace.telemetry.context(trace):
                result = session.run()
            self.sessions.put(request.tenant, name, session.checkpoint().to_dict())
        extra["session"] = {
            "name": name,
            "resumed": checkpoint is not None,
            "interactions": len(session.interactions),
        }
        return result.to_dict(), extra

    def _op_session_release(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        name = request.params.get("session")
        if not isinstance(name, str) or not name:
            raise ProtocolError("session.release needs params.session (the name)")
        released = self.sessions.release(request.tenant, name)
        return {"type": "SessionRelease", "ok": True, "released": released}, {}

    def server_stats(self) -> dict:
        """The server-level counters (requests, errors, ops, admission)."""
        with self._ops_lock:
            ops = dict(self._ops)
        return {
            "requests": self._requests.value,
            "errors": self._errors.value,
            "ops": ops,
            "admission": self.admission.snapshot(),
            "batch_depth": self.batcher.depth,
            "sessions_total": self.sessions.total(),
            "tenants": self.tenant_stats(),
        }

    def _op_stats(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        datasets = {}
        with self._datasets_lock:
            hot = list(self._datasets.values())
        for dataset in hot:
            datasets[dataset.name] = dataset.workspace.stats()
        return {
            "type": "ServiceStats",
            "ok": True,
            "server": self.server_stats(),
            "datasets": datasets,
            # Only the *requesting* tenant's sessions: names are tenant data.
            "tenant_sessions": self.sessions.names(request.tenant),
        }, {}

    def _op_metrics(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        return {"type": "MetricsReport", "ok": True, "text": self.metrics_text()}, {}

    def _op_catalog(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        return {
            "type": "CatalogInfo",
            "ok": True,
            "catalog": {
                "root": str(self.catalog.root),
                "snapshots": self.catalog.entries(),
                "hot": self.dataset_names(),
                "default": self.default_snapshot,
            },
        }, {}

    def _op_shutdown(
        self, request: protocol.Request, trace: TraceContext | None
    ) -> tuple[dict, dict]:
        if not self.config.allow_remote_shutdown:
            raise ServiceError(
                "remote shutdown is disabled (start with allow_remote_shutdown)",
                code="forbidden",
                status=403,
            )
        # Respond first, stop after: the shutdown closes this very socket.
        threading.Thread(target=self._deferred_shutdown, daemon=True).start()
        return {"type": "Shutdown", "ok": True}, {}

    def _deferred_shutdown(self) -> None:
        time.sleep(0.05)  # let the shutdown response flush to its client
        self.shutdown()

    # -- observability -------------------------------------------------------

    def metrics_text(self) -> str:
        """The server registry plus engine aggregates as Prometheus text.

        Engine registries are per snapshot and share instrument names, so
        they cannot be concatenated verbatim; instead the engine counters
        are summed across hot datasets into ``service_engine_*`` series.
        """
        lines = [self.registry.render_prometheus().rstrip("\n")]
        with self._datasets_lock:
            hot = list(self._datasets.values())
        totals: dict[str, int] = {}
        for dataset in hot:
            for key, value in dataset.workspace.stats().items():
                # Only the integer counters aggregate meaningfully; derived
                # ratios (hit rates) and config knobs (backend, workers) do
                # not sum across engines.
                if key == "workers":
                    continue
                if isinstance(value, int) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0) + value
        for key in sorted(totals):
            name = f"service_engine_{key}"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {totals[key]}")
        return "\n".join(lines) + "\n"

    def _start_metrics_endpoint(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        service = self

        class MetricsHandler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = service.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # keep the daemon's stdout clean
                pass

        server = ThreadingHTTPServer(
            (self.config.host, self.config.metrics_port), MetricsHandler
        )
        self._metrics_server = server
        self._metrics_address = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, name="repro-metrics", daemon=True)
        thread.start()
        self._threads.append(thread)
