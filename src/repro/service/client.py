"""The in-process counterpart of the daemon: :class:`ServiceClient`.

Speaks the newline-delimited JSON protocol over one TCP connection and
rebuilds every ``result`` payload through
:func:`~repro.api.result.result_from_dict`, so remote calls return the
*same typed objects* the local :class:`~repro.api.Workspace` would --
``client.query("a.b*")`` is a :class:`~repro.api.QueryResult`, a failed
request raises the same :class:`~repro.errors.ServiceError` hierarchy
(:class:`~repro.errors.OverloadedError` for a shed, carrying the server's
``code``/``status``).  The client is thread-safe: a lock serializes
request/response pairs on the shared socket.

With a :class:`~repro.telemetry.Telemetry` attached
(``ServiceClient(host, port, telemetry=tel)``), every request mints a
:class:`~repro.telemetry.TraceContext`, opens a ``client.request`` span,
and ships the context on the wire's ``trace`` field -- the server and its
shard workers parent their spans onto it, so the client's trace file plus
the server's reconstruct the whole distributed tree (``repro trace --id``).
"""

from __future__ import annotations

import socket
import threading

from repro.api.result import Result, result_from_dict
from repro.errors import ServiceError
from repro.service import protocol


class ServiceClient:
    """One connection to a running :class:`~repro.service.QueryService`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = protocol.DEFAULT_TENANT,
        timeout: float | None = 60.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        telemetry=None,
    ) -> None:
        self.tenant = tenant
        self.max_frame_bytes = max_frame_bytes
        self.telemetry = telemetry
        try:
            self._socket = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ServiceError(
                f"cannot connect to {host}:{port}: {error}", code="unavailable", status=503
            ) from error
        self._reader = self._socket.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def request(self, op: str, params: dict | None = None) -> dict:
        """Send one request and return its (successful) response envelope.

        Raises the typed :class:`~repro.errors.ServiceError` hierarchy on
        error envelopes and on transport failures.
        """
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        if tracer is None:
            envelope = self._exchange(op, params, trace=None)
            return protocol.raise_for_error(envelope)
        from repro.telemetry.tracing import TraceContext

        ctx = TraceContext.mint(tenant=self.tenant)
        with tracer.context(ctx):
            with tracer.span("client.request", op=op, tenant=self.tenant) as span:
                wire = ctx.child(tracer.span_ref(span)).to_dict()
                envelope = self._exchange(op, params, trace=wire)
                span.set(id=envelope.get("id"), trace=ctx.trace_id)
                return protocol.raise_for_error(envelope)

    def _exchange(self, op: str, params: dict | None, *, trace: dict | None) -> dict:
        """One locked send/receive round trip on the shared socket."""
        with self._lock:
            self._next_id += 1
            payload = {
                "id": self._next_id,
                "op": op,
                "tenant": self.tenant,
                "params": params or {},
            }
            if trace is not None:
                payload["trace"] = trace
            frame = protocol.encode_frame(payload, max_bytes=self.max_frame_bytes)
            try:
                self._socket.sendall(frame)
                envelope = protocol.read_frame(
                    self._reader, max_bytes=self.max_frame_bytes
                )
            except OSError as error:
                raise ServiceError(
                    f"connection to the service lost: {error}",
                    code="unavailable",
                    status=503,
                ) from error
        if envelope is None:
            raise ServiceError(
                "server closed the connection", code="unavailable", status=503
            )
        return envelope

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- typed operations ----------------------------------------------------

    def ping(self) -> bool:
        """True iff the server answers the health check."""
        return bool(self.request("ping")["result"].get("ok"))

    def query(
        self, expr: str, *, snapshot: str | None = None, semantics: str = "path"
    ) -> Result:
        """Evaluate a path query remotely; returns a typed ``QueryResult``."""
        params: dict = {"expr": expr, "semantics": semantics}
        if snapshot is not None:
            params["snapshot"] = snapshot
        return result_from_dict(self.request("query", params)["result"])

    def learn(
        self,
        positives,
        negatives=(),
        *,
        snapshot: str | None = None,
        config=None,
    ) -> Result:
        """Learn a query from labeled examples remotely (typed result).

        ``config`` is a :class:`~repro.api.LearnerConfig` or its ``to_dict``
        payload; binary semantics take ``(origin, end)`` pairs as examples.
        """
        params: dict = {
            "positives": [list(p) if isinstance(p, (tuple, list)) else p for p in positives],
            "negatives": [list(n) if isinstance(n, (tuple, list)) else n for n in negatives],
        }
        if snapshot is not None:
            params["snapshot"] = snapshot
        if config is not None:
            params["config"] = config if isinstance(config, dict) else config.to_dict()
        return result_from_dict(self.request("learn", params)["result"])

    def interactive(
        self,
        goal: str,
        *,
        session: str | None = None,
        snapshot: str | None = None,
        config=None,
    ) -> tuple[Result, dict]:
        """Run (or resume) an interactive session remotely.

        Returns ``(InteractiveResult, session_info)``; with a ``session``
        name the server checkpoints the session in the caller's tenant
        table, so a later call with the same name resumes it.
        """
        params: dict = {"goal": goal}
        if session is not None:
            params["session"] = session
        if snapshot is not None:
            params["snapshot"] = snapshot
        if config is not None:
            params["config"] = config if isinstance(config, dict) else config.to_dict()
        envelope = self.request("interactive", params)
        return result_from_dict(envelope["result"]), envelope.get("session", {})

    def release_session(self, session: str) -> bool:
        """Drop a checkpointed session; False if this tenant had none."""
        return bool(
            self.request("session.release", {"session": session})["result"]["released"]
        )

    def stats(self) -> dict:
        """Server counters, per-snapshot engine stats, own session names."""
        return self.request("stats")["result"]

    def metrics_text(self) -> str:
        """The server's metrics in the Prometheus text format."""
        return self.request("metrics")["result"]["text"]

    def catalog(self) -> dict:
        """The server's catalog: registered, hot and default snapshots."""
        return self.request("catalog")["result"]["catalog"]

    def shutdown(self) -> bool:
        """Ask the server to stop (needs ``allow_remote_shutdown``)."""
        return bool(self.request("shutdown")["result"].get("ok"))


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string (the CLI's ``--remote`` value)."""
    host, separator, port = text.rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ServiceError(
            f"--remote must look like HOST:PORT, got {text!r}",
            code="bad_request",
            status=400,
        )
    return host, int(port)
