"""The micro-batcher: coalesce concurrent queries into ``evaluate_many``.

Requests for the *same snapshot* that arrive within one batching window are
drained together, deduplicated by query expression (a burst of clients
asking the same question costs one evaluation, fanned back to each), and
answered by a single :meth:`~repro.engine.QueryEngine.evaluate_many` call,
which resolves the CSR index once and routes every plan/result through the
shared caches -- the amortization the engine's batch API was built for, now
applied across clients instead of within one driver loop.

Submitting threads block on a per-request event; a single worker thread
owns the engine calls.  Admission is bounded: past ``queue_depth`` pending
requests the batcher sheds with a structured
:class:`~repro.errors.OverloadedError` (a 429, not a hang), which is the
service's backpressure story.

``pause()``/``resume()`` freeze draining so tests (and drain-sensitive
benchmarks) can pile up submissions and observe one deterministic batch.
"""

from __future__ import annotations

import threading
import time


class _Pending:
    """One submitted query waiting for its batch to execute.

    ``trace`` is the request's :class:`~repro.telemetry.TraceContext` (or
    None): the batch executes in the worker thread, where the submitting
    thread's ambient context is invisible, so it must ride the queue
    explicitly.
    """

    __slots__ = ("dataset", "query", "event", "result", "error", "abandoned", "trace")

    def __init__(self, dataset, query, trace=None) -> None:
        self.dataset = dataset
        self.query = query
        self.event = threading.Event()
        self.result = None
        self.error: Exception | None = None
        self.abandoned = False
        self.trace = trace


class MicroBatcher:
    """Group compatible single-query requests into engine batch calls.

    ``dataset`` handles passed to :meth:`submit` must expose ``.graph`` and
    ``.engine``; grouping is by dataset identity, so only requests against
    the same open snapshot ever share a batch.
    """

    def __init__(
        self,
        *,
        batch_window: float = 0.002,
        batch_max: int = 16,
        queue_depth: int = 64,
        registry=None,
    ) -> None:
        self.batch_window = batch_window
        self.batch_max = batch_max
        self.queue_depth = queue_depth
        self._pending: list[_Pending] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._paused = False
        self._stopped = False
        self._worker: threading.Thread | None = None
        if registry is not None:
            self._batches = registry.counter(
                "service_batches_total", help="evaluate_many calls issued by the micro-batcher"
            )
            self._batched = registry.counter(
                "service_batched_queries_total",
                help="query requests answered through a micro-batch",
            )
            self._batch_size = registry.histogram(
                "service_batch_size",
                buckets=(1, 2, 4, 8, 16, 32),
                help="queries coalesced per evaluate_many call",
            )
            self._shed = registry.counter(
                "service_batch_shed_total",
                help="query requests shed because the batch queue was full",
            )
            self._deduped = registry.counter(
                "service_batch_deduped_total",
                help="batched requests answered by a duplicate batch-mate's evaluation",
            )
        else:
            self._batches = self._batched = self._batch_size = self._shed = None
            self._deduped = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the worker thread (idempotent)."""
        with self._lock:
            if self._worker is not None:
                return
            self._stopped = False
            self._worker = threading.Thread(
                target=self._run, name="repro-batcher", daemon=True
            )
            self._worker.start()

    def stop(self) -> None:
        """Stop the worker, failing any still-pending requests."""
        with self._wakeup:
            self._stopped = True
            leftovers = self._pending
            self._pending = []
            self._wakeup.notify_all()
        from repro.errors import ServiceError

        for pending in leftovers:
            pending.error = ServiceError(
                "service shutting down", code="shutting_down", status=503
            )
            pending.event.set()
        worker = self._worker
        if worker is not None:
            worker.join(timeout=5.0)
            self._worker = None

    def pause(self) -> None:
        """Hold draining; submissions queue up (until ``queue_depth``)."""
        with self._wakeup:
            self._paused = True

    def resume(self) -> None:
        """Resume draining whatever accumulated while paused."""
        with self._wakeup:
            self._paused = False
            self._wakeup.notify_all()

    @property
    def depth(self) -> int:
        """Currently queued (not yet drained) requests."""
        with self._lock:
            return len(self._pending)

    # -- the client-facing call ----------------------------------------------

    def submit(self, dataset, query, *, timeout: float | None = None, trace=None):
        """Evaluate ``query`` on ``dataset``, coalesced with its neighbours.

        Blocks until the owning batch executed; raises
        :class:`~repro.errors.OverloadedError` immediately when the queue
        is full, and a 504-style timeout error when the batch did not
        complete within ``timeout`` seconds.  ``trace`` carries the
        request's trace context into the worker thread.
        """
        from repro.errors import OverloadedError, ServiceError

        pending = _Pending(dataset, query, trace)
        with self._wakeup:
            if self._stopped:
                raise ServiceError("service shutting down", code="shutting_down", status=503)
            if len(self._pending) >= self.queue_depth:
                if self._shed is not None:
                    self._shed.inc()
                raise OverloadedError(
                    f"batch queue full ({self.queue_depth} pending); retry later"
                )
            self._pending.append(pending)
            self._wakeup.notify_all()
        if not pending.event.wait(timeout):
            with self._lock:
                pending.abandoned = True
            raise ServiceError(
                f"query did not complete within {timeout}s", code="timeout", status=504
            )
        if pending.error is not None:
            raise pending.error
        return pending.result

    # -- the worker ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._stopped and (self._paused or not self._pending):
                    self._wakeup.wait()
                if self._stopped:
                    return
            # Let a burst of concurrent submissions land before draining, so
            # simultaneous clients actually share a batch.
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            batch = self._drain_one_group()
            if batch:
                self._execute(batch)

    def _drain_one_group(self) -> list[_Pending]:
        """Pop up to ``batch_max`` live requests of the oldest dataset."""
        with self._wakeup:
            if self._paused or not self._pending:
                return []
            dataset = self._pending[0].dataset
            batch: list[_Pending] = []
            keep: list[_Pending] = []
            for pending in self._pending:
                if pending.abandoned:
                    continue
                if pending.dataset is dataset and len(batch) < self.batch_max:
                    batch.append(pending)
                else:
                    keep.append(pending)
            self._pending = keep
            if keep:  # another group (or overflow) is still waiting
                self._wakeup.notify_all()
            return batch

    @staticmethod
    def _dedupe_key(pending: _Pending):
        """Group batch-mates asking the same question (burst traffic is
        repetitive: many clients polling one query).  Queries without a
        stable expression fall back to identity -- never deduplicated."""
        expression = getattr(pending.query, "expression", None)
        return expression if isinstance(expression, str) else pending

    def _execute(self, batch: list[_Pending]) -> None:
        dataset = batch[0].dataset
        if self._batches is not None:
            self._batches.inc()
            self._batched.inc(len(batch))
            self._batch_size.observe(len(batch))
        # Traced requests opt out of coalescing: their spans must attribute
        # to exactly one request's trace, and the batch kernel would smear
        # one evaluation across several contexts.  Tracing is an opt-in
        # diagnostic mode -- fidelity beats batching there.
        traced = [pending for pending in batch if pending.trace is not None]
        if traced:
            batch = [pending for pending in batch if pending.trace is None]
            telemetry = getattr(
                getattr(dataset, "workspace", None), "telemetry", None
            )
            for pending in traced:
                try:
                    if telemetry is not None:
                        with telemetry.context(pending.trace):
                            pending.result = dataset.engine.evaluate(
                                dataset.graph, pending.query
                            )
                    else:
                        pending.result = dataset.engine.evaluate(
                            dataset.graph, pending.query
                        )
                except Exception as error:  # noqa: BLE001 - delivered to the caller
                    pending.error = error
                pending.event.set()
            if not batch:
                return
        # Evaluate each distinct expression once and fan the answer back to
        # every duplicate submitter.
        leaders: dict[object, int] = {}
        unique: list[_Pending] = []
        positions: list[int] = []
        for pending in batch:
            key = self._dedupe_key(pending)
            slot = leaders.get(key)
            if slot is None:
                leaders[key] = len(unique)
                slot = len(unique)
                unique.append(pending)
            positions.append(slot)
        if self._deduped is not None and len(unique) < len(batch):
            self._deduped.inc(len(batch) - len(unique))
        try:
            selected = dataset.engine.evaluate_many(
                dataset.graph, [pending.query for pending in unique]
            )
        except Exception:
            # One bad query must not fail its batch-mates: fall back to
            # per-item evaluation so errors attribute to their request.
            for pending in batch:
                try:
                    pending.result = dataset.engine.evaluate(dataset.graph, pending.query)
                except Exception as error:  # noqa: BLE001 - delivered to the caller
                    pending.error = error
                pending.event.set()
            return
        for pending, slot in zip(batch, positions):
            pending.result = selected[slot]
            pending.event.set()
