"""The query service: a long-running daemon over a catalog of snapshots.

``repro serve`` turns the library into a multi-tenant server: one
:class:`QueryService` opens a :class:`~repro.storage.DatasetCatalog` of hot
snapshots once and answers query/learn/interactive traffic from many
concurrent clients over a newline-delimited JSON TCP protocol
(:mod:`repro.service.protocol`).  The pieces:

* :class:`QueryService` (:mod:`~repro.service.server`) -- the daemon:
  threaded socket front-end, one shared engine per snapshot (the
  cross-tenant result cache), Prometheus metrics endpoint;
* :class:`ServiceClient` (:mod:`~repro.service.client`) -- the typed
  client; remote calls return the same ``Result`` objects local
  workspaces do;
* :class:`MicroBatcher` (:mod:`~repro.service.batching`) -- coalesces
  concurrent single-query requests into ``evaluate_many`` batches;
* :class:`AdmissionController` / :class:`SessionTable`
  (:mod:`~repro.service.session`) -- bounded concurrency with 429-style
  load-shedding, and per-tenant interactive-session checkpoints.
"""

from repro.service.batching import MicroBatcher
from repro.service.client import ServiceClient, parse_address
from repro.service.protocol import MAX_FRAME_BYTES, OPS
from repro.service.server import QueryService
from repro.service.session import AdmissionController, SessionTable

__all__ = [
    "QueryService",
    "ServiceClient",
    "MicroBatcher",
    "AdmissionController",
    "SessionTable",
    "parse_address",
    "MAX_FRAME_BYTES",
    "OPS",
]
