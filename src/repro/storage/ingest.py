"""Streaming bulk ingestion: text edge streams -> interned CSR, in O(E).

The loaders (:func:`ingest_edge_list`, :func:`ingest_jsonl`,
:func:`ingest_csv`) read a line-oriented source once, interning node names
and labels into int tables on the fly and accumulating each label's edges
as packed ``(origin_id << 32) | end_id`` codes in flat ``int64`` arrays --
no per-edge Python tuples, no adjacency dictionaries.  At the end the codes
are sorted per label (the canonical CSR slice order) and written straight
into :class:`~repro.engine.index.GraphIndex` arrays.

All loaders are gzip-transparent (a ``.gz`` suffix is decompressed on the
fly), report progress through an optional callback, and apply a malformed-
line policy: ``"raise"`` (default, fail fast with the line number) or
``"skip"`` (count and continue, optionally bounded by ``max_errors``).

The resulting :class:`Ingestion` bundles the built index, an
:class:`IngestReport` of what happened, and conveniences to wrap the index
as a frozen :class:`~repro.storage.view.GraphView` or save it as a
``.rgz`` snapshot.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
import time
from array import array
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.index import GraphIndex, csr_pair
from repro.errors import StorageError
from repro.graphdb.graph import mint_graph_uid
from repro.graphdb.io import unescape_field
from repro.storage.view import GraphView
from repro.telemetry import Telemetry

#: Shared disabled bundle backing the default ``telemetry=None``.
_NOOP_TELEMETRY = Telemetry()

#: Node ids are packed two-per-int64; each must fit 32 bits.
_MAX_NODES = 1 << 31
_LOW32 = 0xFFFFFFFF

#: Accepted ``on_error`` policies.
ERROR_POLICIES = ("raise", "skip")


@dataclass
class IngestReport:
    """Counters and provenance of one bulk-ingestion run."""

    source: str = "<stream>"
    format: str = "edge-list"
    lines_read: int = 0
    edges_added: int = 0
    duplicate_edges: int = 0
    nodes_added: int = 0
    labels_added: int = 0
    malformed_lines: int = 0
    error_samples: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "format": self.format,
            "lines_read": self.lines_read,
            "edges_added": self.edges_added,
            "duplicate_edges": self.duplicate_edges,
            "nodes_added": self.nodes_added,
            "labels_added": self.labels_added,
            "malformed_lines": self.malformed_lines,
            "error_samples": list(self.error_samples),
            "elapsed": self.elapsed,
        }


class Ingestion:
    """The outcome of a bulk load: a ready index plus its report."""

    def __init__(self, index: GraphIndex, report: IngestReport) -> None:
        self.index = index
        self.report = report

    def view(self) -> GraphView:
        """The ingested graph as a frozen, query-ready :class:`GraphView`."""
        return GraphView(self.index)

    def save(self, path, *, meta: dict | None = None) -> dict:
        """Write the ingested graph as a ``.rgz`` snapshot (plus provenance)."""
        from repro.storage.snapshot import write_snapshot

        payload = dict(meta or {})
        payload.setdefault("ingest", self.report.as_dict())
        return write_snapshot(self.index, path, meta=payload)

    def __repr__(self) -> str:
        return (
            f"Ingestion(nodes={self.index.num_nodes}, edges={self.index.edge_count}, "
            f"malformed={self.report.malformed_lines})"
        )


class _StreamingBuilder:
    """Interning tables plus per-label packed edge-code arrays."""

    def __init__(self, *, dedupe: bool) -> None:
        self.node_ids: dict[str, int] = {}
        self.nodes: list[str] = []
        self.label_ids: dict[str, int] = {}
        self.labels: list[str] = []
        self.codes: list[array] = []  # per label, (origin << 32) | end
        self.seen: list[set[int]] | None = [] if dedupe else None
        self.duplicates = 0

    def node_id(self, name: str) -> int:
        node_id = self.node_ids.get(name)
        if node_id is None:
            node_id = len(self.nodes)
            if node_id >= _MAX_NODES:
                raise StorageError(f"too many nodes for the storage layer ({_MAX_NODES})")
            self.node_ids[name] = node_id
            self.nodes.append(name)
        return node_id

    def add_edge(self, origin: str, label: str, end: str) -> bool:
        label_id = self.label_ids.get(label)
        if label_id is None:
            label_id = len(self.labels)
            self.label_ids[label] = label_id
            self.labels.append(label)
            self.codes.append(array("q"))
            if self.seen is not None:
                self.seen.append(set())
        code = (self.node_id(origin) << 32) | self.node_id(end)
        if self.seen is not None:
            bucket = self.seen[label_id]
            if code in bucket:
                self.duplicates += 1
                return False
            bucket.add(code)
        self.codes[label_id].append(code)
        return True

    def build_index(self) -> GraphIndex:
        n = len(self.nodes)
        fwd_offsets: list[array] = []
        fwd_targets: list[array] = []
        bwd_offsets: list[array] = []
        bwd_targets: list[array] = []
        edge_count = 0
        for codes in self.codes:
            edge_count += len(codes)
            pairs = [(code >> 32, code & _LOW32) for code in codes]
            fwd_off, fwd_tgt, bwd_off, bwd_tgt = csr_pair(pairs, n)
            fwd_offsets.append(fwd_off)
            fwd_targets.append(fwd_tgt)
            bwd_offsets.append(bwd_off)
            bwd_targets.append(bwd_tgt)
        return GraphIndex(
            graph_uid=mint_graph_uid(),
            graph_version=0,
            nodes_by_id=tuple(self.nodes),
            labels_by_id=tuple(self.labels),
            node_ids=dict(self.node_ids),
            label_ids=dict(self.label_ids),
            fwd_offsets=fwd_offsets,
            fwd_targets=fwd_targets,
            bwd_offsets=bwd_offsets,
            bwd_targets=bwd_targets,
            edge_count=edge_count,
        )


class _LineFeed:
    """Uniform line iteration over paths (gzip-transparent), files, iterables."""

    def __init__(self, source) -> None:
        self.name = "<stream>"
        self._close = None
        if isinstance(source, (str, Path)):
            path = Path(source)
            self.name = str(path)
            if path.suffix == ".gz":
                handle = gzip.open(path, "rt", encoding="utf-8")
            else:
                handle = path.open("r", encoding="utf-8")
            self._close = handle.close
            self.lines = handle
        elif hasattr(source, "read"):
            if isinstance(source, (io.RawIOBase, io.BufferedIOBase)):
                source = io.TextIOWrapper(source, encoding="utf-8")
            self.name = getattr(source, "name", "<stream>")
            self.lines = source
        else:
            self.lines = iter(source)

    def close(self) -> None:
        if self._close is not None:
            self._close()


class _ErrorPolicy:
    """Shared malformed-line handling for all loaders."""

    def __init__(self, on_error: str, max_errors: int | None, report: IngestReport) -> None:
        if on_error not in ERROR_POLICIES:
            raise StorageError(
                f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}"
            )
        if max_errors is not None and max_errors < 0:
            raise StorageError(f"max_errors must be None or >= 0, got {max_errors!r}")
        self.on_error = on_error
        self.max_errors = max_errors
        self.report = report

    def malformed(self, line_number: int, message: str) -> None:
        detail = f"line {line_number}: {message}"
        if self.on_error == "raise":
            raise StorageError(f"malformed input ({detail})")
        self.report.malformed_lines += 1
        if len(self.report.error_samples) < 5:
            self.report.error_samples.append(detail)
        if self.max_errors is not None and self.report.malformed_lines > self.max_errors:
            raise StorageError(
                f"aborting ingestion: more than {self.max_errors} malformed line(s); "
                f"last was {detail}"
            )


def _run(
    source,
    fmt_name: str,
    parse_line,
    *,
    on_error,
    max_errors,
    progress,
    progress_every,
    dedupe,
    telemetry: Telemetry | None = None,
) -> Ingestion:
    """The shared streaming loop: feed lines to ``parse_line``, build, report.

    ``parse_line(line, line_number, builder, policy)`` returns True when it
    added an edge (False for directives/comments/skips).  ``telemetry``,
    when given, records one ``storage.ingest`` span for the whole run and
    bumps the ``storage_ingest_*`` counters.
    """
    telemetry = telemetry if telemetry is not None else _NOOP_TELEMETRY
    started = time.perf_counter()
    report = IngestReport(format=fmt_name)
    policy = _ErrorPolicy(on_error, max_errors, report)
    builder = _StreamingBuilder(dedupe=dedupe)
    feed = _LineFeed(source)
    report.source = feed.name
    if progress_every < 1:
        raise StorageError(f"progress_every must be >= 1, got {progress_every!r}")
    with telemetry.span(
        "storage.ingest", format=fmt_name, source=report.source
    ) as span:
        try:
            for line_number, line in enumerate(feed.lines, start=1):
                report.lines_read = line_number
                if parse_line(line, line_number, builder, policy):
                    report.edges_added += 1
                if progress is not None and line_number % progress_every == 0:
                    progress(line_number, report.edges_added)
        finally:
            feed.close()
        index = builder.build_index()
        report.duplicate_edges = builder.duplicates
        report.nodes_added = index.num_nodes
        report.labels_added = index.num_labels
        report.elapsed = time.perf_counter() - started
        span.set(
            lines=report.lines_read,
            edges=report.edges_added,
            nodes=report.nodes_added,
            malformed=report.malformed_lines,
        )
    registry = telemetry.registry
    registry.counter("storage_ingest_runs_total", help="Bulk ingestion runs").inc()
    registry.counter(
        "storage_ingest_lines_total", help="Source lines read by bulk ingestion"
    ).inc(report.lines_read)
    registry.counter(
        "storage_ingest_edges_total", help="Edges added by bulk ingestion"
    ).inc(report.edges_added)
    if progress is not None:
        progress(report.lines_read, report.edges_added)
    return Ingestion(index, report)


# -- the three text formats ---------------------------------------------------


def ingest_edge_list(
    source,
    *,
    on_error: str = "raise",
    max_errors: int | None = None,
    progress=None,
    progress_every: int = 100_000,
    dedupe: bool = True,
    telemetry: Telemetry | None = None,
) -> Ingestion:
    """Stream a tab-separated edge list (the :mod:`repro.graphdb.io` dialect:
    ``#`` comments, ``%node`` directives, backslash-escaped fields)."""

    def parse(line: str, line_number: int, builder: _StreamingBuilder, policy) -> bool:
        line = line.strip()
        if not line or line.startswith("#"):
            return False
        parts = line.split("\t")
        try:
            if parts[0] == "%node":
                if len(parts) != 2:
                    raise StorageError("malformed %node directive")
                builder.node_id(unescape_field(parts[1], line_number))
                return False
            if len(parts) != 3:
                raise StorageError(f"expected 3 tab-separated fields, got {len(parts)}")
            origin, label, end = (unescape_field(part, line_number) for part in parts)
            if not label:
                raise StorageError("empty edge label")
        except Exception as error:
            policy.malformed(line_number, str(error))
            return False
        return builder.add_edge(origin, label, end)

    return _run(
        source,
        "edge-list",
        parse,
        on_error=on_error,
        max_errors=max_errors,
        progress=progress,
        progress_every=progress_every,
        dedupe=dedupe,
        telemetry=telemetry,
    )


def ingest_jsonl(
    source,
    *,
    on_error: str = "raise",
    max_errors: int | None = None,
    progress=None,
    progress_every: int = 100_000,
    dedupe: bool = True,
    telemetry: Telemetry | None = None,
) -> Ingestion:
    """Stream JSON Lines: ``["origin", "label", "end"]`` triples or objects
    with ``origin``/``label``/``end`` keys (``{"node": name}`` declares an
    isolated node)."""

    def parse(line: str, line_number: int, builder: _StreamingBuilder, policy) -> bool:
        line = line.strip()
        if not line:
            return False
        try:
            record = json.loads(line)
            if isinstance(record, dict):
                if set(record) == {"node"}:
                    builder.node_id(_text(record["node"]))
                    return False
                missing = {"origin", "label", "end"} - set(record)
                if missing:
                    raise StorageError(f"missing keys: {sorted(missing)}")
                origin, label, end = record["origin"], record["label"], record["end"]
            elif isinstance(record, list) and len(record) == 3:
                origin, label, end = record
            else:
                raise StorageError(
                    "expected a 3-element array or an origin/label/end object"
                )
            label = _text(label)
            if not label:
                raise StorageError("empty edge label")
            origin, end = _text(origin), _text(end)
        except Exception as error:
            policy.malformed(line_number, str(error))
            return False
        return builder.add_edge(origin, label, end)

    return _run(
        source,
        "jsonl",
        parse,
        on_error=on_error,
        max_errors=max_errors,
        progress=progress,
        progress_every=progress_every,
        dedupe=dedupe,
        telemetry=telemetry,
    )


def ingest_csv(
    source,
    *,
    delimiter: str = ",",
    header: str = "auto",
    on_error: str = "raise",
    max_errors: int | None = None,
    progress=None,
    progress_every: int = 100_000,
    dedupe: bool = True,
    telemetry: Telemetry | None = None,
) -> Ingestion:
    """Stream a 3-column CSV of ``origin,label,end`` rows.

    ``header`` is ``"auto"`` (skip a first row that names the columns),
    ``"skip"`` (always drop the first row) or ``"none"``.
    """
    if header not in ("auto", "skip", "none"):
        raise StorageError(f"header must be 'auto', 'skip' or 'none', got {header!r}")
    header_names = {"origin", "label", "end", "source", "target", "src", "dst"}
    state = {"first": True}

    def parse(line: str, line_number: int, builder: _StreamingBuilder, policy) -> bool:
        if not line.strip():
            return False
        try:
            try:
                row = next(csv.reader([line], delimiter=delimiter))
            except (csv.Error, StopIteration) as error:
                raise StorageError(f"bad CSV row: {error}") from error
            if state["first"]:
                state["first"] = False
                if header == "skip":
                    return False
                if header == "auto" and {cell.strip().lower() for cell in row} <= header_names:
                    return False
            if len(row) != 3:
                raise StorageError(f"expected 3 columns, got {len(row)}")
            origin, label, end = (cell.strip() for cell in row)
            if not label:
                raise StorageError("empty edge label")
        except Exception as error:
            policy.malformed(line_number, str(error))
            return False
        return builder.add_edge(origin, label, end)

    return _run(
        source,
        "csv",
        parse,
        on_error=on_error,
        max_errors=max_errors,
        progress=progress,
        progress_every=progress_every,
        dedupe=dedupe,
        telemetry=telemetry,
    )


#: Loader registry for the CLI and catalog (format name -> function).
INGEST_FORMATS = {
    "edge-list": ingest_edge_list,
    "jsonl": ingest_jsonl,
    "csv": ingest_csv,
}


def ingest_file(path, *, format: str = "auto", **options) -> Ingestion:
    """Dispatch on ``format`` (or guess it from the file suffix)."""
    name = format
    if name == "auto":
        suffixes = [s.lower() for s in Path(path).suffixes]
        if suffixes and suffixes[-1] == ".gz":
            suffixes.pop()
        last = suffixes[-1] if suffixes else ""
        if last in (".jsonl", ".ndjson"):
            name = "jsonl"
        elif last == ".csv":
            name = "csv"
        else:
            name = "edge-list"
    loader = INGEST_FORMATS.get(name)
    if loader is None:
        raise StorageError(
            f"unknown ingest format {format!r}; expected one of "
            f"{sorted(INGEST_FORMATS)} or 'auto'"
        )
    return loader(path, **options)


def _text(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return str(value)
    raise StorageError(f"expected a string identifier, got {value!r}")
