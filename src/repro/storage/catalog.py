"""The on-disk snapshot catalog: named datasets behind one directory.

A :class:`DatasetCatalog` owns a directory of ``.rgz`` snapshots plus a
``catalog.json`` manifest mapping names to files and provenance.  It is the
piece that turns "the 10k synthetic grid from the paper" or "last night's
ingested crawl" into a name that :meth:`Workspace.open_snapshot
<repro.api.workspace.Workspace.open_snapshot>` and the ``repro`` CLI can
resolve without the caller tracking paths.

Built-in dataset builders (:data:`BUILTIN_DATASETS`) cover the paper's
figure graphs and the synthetic generator at a few scales;
:meth:`DatasetCatalog.ensure` materializes one on first use and serves the
cached snapshot afterwards.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

try:  # POSIX advisory locking; Windows falls back to thread-level locking only.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.engine.index import GraphIndex
from repro.errors import StorageError
from repro.graphdb.graph import GraphDB
from repro.storage.snapshot import (
    SNAPSHOT_SUFFIX,
    MappedGraphIndex,
    open_snapshot,
    snapshot_info,
    write_snapshot,
)
from repro.storage.view import GraphView

#: Default catalog location (relative to the working directory).
DEFAULT_CATALOG_ROOT = ".repro/snapshots"

_MANIFEST = "catalog.json"


def _builtin_geo() -> GraphDB:
    from repro.datasets.figures import geo_graph

    return geo_graph()


def _builtin_g0() -> GraphDB:
    from repro.datasets.figures import example_graph_g0

    return example_graph_g0()


def _builtin_synthetic(node_count: int):
    def build() -> GraphDB:
        from repro.datasets.synthetic import scale_free_graph

        return scale_free_graph(node_count, alphabet_size=20, zipf_exponent=1.0, seed=29)

    return build


#: Named dataset builders :meth:`DatasetCatalog.ensure` can materialize.
BUILTIN_DATASETS = {
    "geo": _builtin_geo,
    "g0": _builtin_g0,
    "synthetic-1k": _builtin_synthetic(1_000),
    "synthetic-10k": _builtin_synthetic(10_000),
}


class DatasetCatalog:
    """Named ``.rgz`` snapshots under one root directory."""

    def __init__(self, root: str | Path = DEFAULT_CATALOG_ROOT) -> None:
        self.root = Path(root)
        self._manifest_path = self.root / _MANIFEST
        # Serializes manifest read-modify-write within this process; the
        # flock on catalog.lock extends the same exclusion across processes.
        self._mutation_lock = threading.Lock()

    def _ensure_root(self) -> None:
        # Created lazily by write operations only, so read-only lookups
        # (info, a failed open) leave no directory behind.
        self.root.mkdir(parents=True, exist_ok=True)

    # -- manifest ------------------------------------------------------------

    def entries(self) -> dict[str, dict]:
        """The manifest: name -> entry dict (file, counts, provenance)."""
        if not self._manifest_path.exists():
            return {}
        try:
            manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(f"unreadable catalog manifest {self._manifest_path}: {error}")
        if not isinstance(manifest, dict) or not isinstance(manifest.get("snapshots"), dict):
            raise StorageError(f"malformed catalog manifest {self._manifest_path}")
        return manifest["snapshots"]

    def names(self) -> list[str]:
        """The registered snapshot names, sorted."""
        return sorted(self.entries())

    def __contains__(self, name: str) -> bool:
        return name in self.entries()

    def _write_manifest(self, snapshots: dict[str, dict]) -> None:
        """Atomically replace the manifest: unique temp + fsync + rename.

        The temp name carries the pid so two crashed writers never clobber
        each other's in-flight file; the fsync-before-rename means a crash
        at any point leaves either the old manifest or the new one, never a
        truncated in-between (``os.replace`` is atomic on POSIX).
        """
        self._ensure_root()
        payload = json.dumps({"version": 1, "snapshots": snapshots}, indent=2, sort_keys=True)
        temp = self.root / f".{_MANIFEST}.{os.getpid()}.tmp"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self._manifest_path)
        finally:
            if temp.exists():  # replace failed: don't leave the temp behind
                temp.unlink()
        self._sync_root_dir()

    def _sync_root_dir(self) -> None:
        """Flush the rename itself (directory entry) to disk, best effort."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)

    @contextmanager
    def _mutation(self):
        """Exclusive manifest read-modify-write section.

        Yields the current entries dict (a private copy); the caller
        mutates it and the context writes it back while still holding both
        the in-process lock and the cross-process ``flock`` on
        ``catalog.lock``, so concurrent registrations cannot lose entries.
        """
        with self._mutation_lock:
            self._ensure_root()
            lock_fd = None
            lock_path = self.root / ".catalog.lock"
            if fcntl is not None:
                lock_fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
                fcntl.flock(lock_fd, fcntl.LOCK_EX)
            try:
                snapshots = dict(self.entries())
                yield snapshots
                self._write_manifest(snapshots)
            finally:
                if lock_fd is not None:
                    fcntl.flock(lock_fd, fcntl.LOCK_UN)
                    os.close(lock_fd)

    # -- registration ---------------------------------------------------------

    def path_for(self, name: str) -> Path:
        """The file a snapshot named ``name`` lives in (whether or not it exists)."""
        entry = self.entries().get(name)
        if entry is not None:
            return self.root / entry["file"]
        return self.root / f"{name}{SNAPSHOT_SUFFIX}"

    def save(
        self,
        name: str,
        source: GraphIndex | GraphDB | GraphView,
        *,
        meta: dict | None = None,
    ) -> Path:
        """Write ``source`` as the catalog snapshot ``name`` (replacing it)."""
        _validate_name(name)
        if isinstance(source, GraphView):
            index = source.prebuilt_index
        elif isinstance(source, GraphIndex):
            index = source
        elif isinstance(source, GraphDB):
            index = GraphIndex.build(source)
        else:
            raise StorageError(
                f"cannot snapshot a {type(source).__name__}; expected a GraphDB, "
                "GraphIndex or GraphView"
            )
        self._ensure_root()
        destination = self.root / f"{name}{SNAPSHOT_SUFFIX}"
        payload = dict(meta or {})
        payload.setdefault("catalog_name", name)
        if getattr(source, "has_fixed_alphabet", False):
            payload.setdefault("alphabet", sorted(source.alphabet))
        info = write_snapshot(index, destination, meta=payload)
        self._record(name, destination, info)
        return destination

    def register(self, name: str, path: str | Path, *, move: bool = False) -> Path:
        """Adopt an existing snapshot file under ``name``.

        With ``move`` the file is moved into the catalog root; otherwise an
        absolute reference is recorded in place.
        """
        _validate_name(name)
        source = Path(path)
        info = snapshot_info(source)  # validates the header
        if move:
            self._ensure_root()
            destination = self.root / f"{name}{SNAPSHOT_SUFFIX}"
            os.replace(source, destination)
            info = snapshot_info(destination)
        else:
            destination = source
        self._record(name, destination, info)
        return destination

    def _record(self, name: str, path: Path, info: dict) -> None:
        try:
            file_ref = str(path.relative_to(self.root))
        except ValueError:
            file_ref = str(path.resolve())
        with self._mutation() as snapshots:
            snapshots[name] = {
                "file": file_ref,
                "nodes": info["nodes"],
                "edges": info["edges"],
                "labels": info["labels"],
                "file_bytes": info["file_bytes"],
                "registered_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "meta": info.get("meta", {}),
            }

    def remove(self, name: str, *, delete_file: bool = False) -> None:
        """Drop ``name`` from the manifest (optionally deleting its file)."""
        with self._mutation() as snapshots:
            entry = snapshots.pop(name, None)
            if entry is None:
                raise StorageError(f"no catalog snapshot named {name!r}")
            if delete_file:
                target = self.root / entry["file"]
                if target.exists():
                    target.unlink()

    # -- access ---------------------------------------------------------------

    def open(
        self,
        name: str,
        *,
        verify: bool = False,
        use_mmap: bool = True,
        telemetry=None,
    ) -> MappedGraphIndex:
        """Open the named snapshot as a :class:`MappedGraphIndex`."""
        entry = self.entries().get(name)
        if entry is None:
            raise StorageError(
                f"no catalog snapshot named {name!r} "
                f"(known: {', '.join(self.names()) or 'none'})"
            )
        return open_snapshot(
            self.root / entry["file"], verify=verify, use_mmap=use_mmap, telemetry=telemetry
        )

    def open_view(self, name: str, **options) -> GraphView:
        """Open the named snapshot as a frozen :class:`GraphView`."""
        return GraphView(self.open(name, **options))

    def info(self, name: str) -> dict:
        """Full :func:`snapshot_info` of the named snapshot."""
        entry = self.entries().get(name)
        if entry is None:
            raise StorageError(f"no catalog snapshot named {name!r}")
        return snapshot_info(self.root / entry["file"])

    def ensure(self, name: str, builder=None, *, meta: dict | None = None) -> Path:
        """The path of snapshot ``name``, materializing it on first use.

        ``builder`` is a zero-argument callable returning a
        :class:`GraphDB` (or index/view); omitted, the :data:`BUILTIN_DATASETS`
        registry is consulted.
        """
        entry = self.entries().get(name)
        if entry is not None:
            path = self.root / entry["file"]
            if path.exists():
                return path
        if builder is None:
            builder = BUILTIN_DATASETS.get(name)
        if builder is None:
            raise StorageError(
                f"no catalog snapshot named {name!r} and no builder for it "
                f"(built-ins: {', '.join(sorted(BUILTIN_DATASETS))})"
            )
        payload = dict(meta or {})
        payload.setdefault("source", "builder")
        return self.save(name, builder(), meta=payload)


def _validate_name(name: str) -> None:
    if not name or any(sep in name for sep in ("/", "\\", "\x00")) or name.startswith("."):
        raise StorageError(f"invalid catalog snapshot name: {name!r}")
