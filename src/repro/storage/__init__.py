"""The durable graph-storage subsystem.

Everything the engine computes starts from a graph in memory; this package
makes graphs *durable* and *cheap to reopen*:

* :mod:`repro.storage.format` -- the ``.rgz`` binary snapshot layout:
  checksummed header + flat little-endian int64 sections;
* :mod:`repro.storage.snapshot` -- :func:`write_snapshot` /
  :func:`open_snapshot`: a graph and its prebuilt per-label CSR index in
  one file, mapped back zero-copy as a :class:`MappedGraphIndex`;
* :mod:`repro.storage.view` -- :class:`GraphView`, a frozen graph-shaped
  API over a prebuilt index that the query engine consumes unchanged;
* :mod:`repro.storage.ingest` -- streaming bulk loaders (edge-list, JSON
  Lines, CSV; gzip-transparent) that intern names and build CSR in O(E)
  without materializing Python edge tuples;
* :mod:`repro.storage.catalog` -- :class:`DatasetCatalog`, named snapshots
  on disk (paper figures, synthetic grids, ingested files).

Incremental index maintenance -- the mutation delta log on
:class:`~repro.graphdb.graph.GraphDB` and
:meth:`~repro.engine.index.GraphIndex.refresh` -- lives with the graph and
engine layers, but it is the same contract: CSR arrays are canonical, so
snapshot loads, refreshes and full rebuilds are byte-interchangeable.
"""

from repro.storage.catalog import BUILTIN_DATASETS, DEFAULT_CATALOG_ROOT, DatasetCatalog
from repro.storage.format import FORMAT_VERSION, MAGIC, SnapshotHeader
from repro.storage.ingest import (
    INGEST_FORMATS,
    Ingestion,
    IngestReport,
    ingest_csv,
    ingest_edge_list,
    ingest_file,
    ingest_jsonl,
)
from repro.storage.snapshot import (
    SNAPSHOT_SUFFIX,
    MappedGraphIndex,
    open_snapshot,
    snapshot_info,
    write_snapshot,
)
from repro.storage.view import GraphView

__all__ = [
    "BUILTIN_DATASETS",
    "DEFAULT_CATALOG_ROOT",
    "DatasetCatalog",
    "FORMAT_VERSION",
    "GraphView",
    "INGEST_FORMATS",
    "IngestReport",
    "Ingestion",
    "MAGIC",
    "MappedGraphIndex",
    "SNAPSHOT_SUFFIX",
    "SnapshotHeader",
    "ingest_csv",
    "ingest_edge_list",
    "ingest_file",
    "ingest_jsonl",
    "open_snapshot",
    "snapshot_info",
    "write_snapshot",
]
