"""Writing and zero-copy opening of ``.rgz`` graph snapshots.

:func:`write_snapshot` serializes any :class:`~repro.engine.index.GraphIndex`
(its node/label tables and per-label CSR arrays) into the flat binary layout
of :mod:`repro.storage.format`.  :func:`open_snapshot` maps the file back as
a :class:`MappedGraphIndex` whose CSR "arrays" are ``memoryview`` casts into
the ``mmap`` -- the query engine's kernels index and slice them exactly like
the heap ``array`` arrays of a built index, so a multi-million-edge graph is
queryable after faulting in only the pages a query actually touches.

The expensive part of opening is re-interning the node-name table (the
engine must map selected int ids back to user-facing identifiers); that is
an O(n) string decode, not an O(E) graph rebuild, which is where the
order-of-magnitude load speedup over re-ingestion comes from.
"""

from __future__ import annotations

import json
import mmap
import sys
import zlib
from pathlib import Path

from repro.engine.index import GraphIndex
from repro.errors import StorageError
from repro.graphdb.graph import mint_graph_uid
from repro.storage import format as fmt
from repro.telemetry import Telemetry

#: The canonical snapshot file extension.
SNAPSHOT_SUFFIX = ".rgz"

#: Shared disabled bundle: the default when callers pass no telemetry, so
#: the span/counter call sites below stay unconditional.
_NOOP_TELEMETRY = Telemetry()


class MappedGraphIndex(GraphIndex):
    """A frozen :class:`GraphIndex` whose CSR arrays live in an ``mmap``.

    Behaviorally identical to a built index (the engine consumes it
    unchanged); additionally carries the source ``path`` and the snapshot's
    ``meta`` JSON, and owns the mapping -- :meth:`close` releases it.
    Refreshing a mapped index (after :meth:`thaw`-ing its view into a
    mutable graph) always yields a plain heap-backed :class:`GraphIndex`.
    """

    __slots__ = ("path", "meta", "content_uid", "_mmap", "_file", "_closed")

    def __init__(
        self,
        *,
        path: Path,
        meta: dict,
        mapping,
        file,
        content_uid: tuple | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.path = path
        self.meta = meta
        # Content identity: every `open_snapshot` of the same file mints a
        # fresh process-local `graph_uid`, so cross-workspace cache sharing
        # keys on (path, payload checksum) instead -- stable across opens
        # and across engines within one process.
        self.content_uid = content_uid
        self._mmap = mapping
        self._file = file
        self._closed = False

    def close(self) -> None:
        """Release the file mapping.  The index is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        # Drop every view into the mapping before closing it; mmap.close()
        # raises BufferError while exported memoryviews are alive.
        self.fwd_offsets = self.fwd_targets = ()
        self.bwd_offsets = self.bwd_targets = ()
        if self._mmap is not None:
            _close_quietly(self._mmap)
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"MappedGraphIndex({str(self.path)!r}, nodes={self.num_nodes}, "
            f"labels={self.num_labels}, edges={self.edge_count}, {state})"
        )


def write_snapshot(
    index: GraphIndex,
    path: str | Path,
    *,
    meta: dict | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    """Serialize ``index`` (node/label tables + CSR arrays) to ``path``.

    Every node identifier must be a string (the paper's graphs and every
    ingestion path use string ids); other identifiers have no canonical
    byte encoding and are rejected.  Returns the info dict that
    :func:`snapshot_info` would report for the written file.

    ``telemetry``, when given, records a ``storage.write_snapshot`` span
    and bumps the ``storage_snapshot_writes_total`` /
    ``storage_snapshot_bytes_written_total`` counters.
    """
    telemetry = telemetry if telemetry is not None else _NOOP_TELEMETRY
    with telemetry.span("storage.write_snapshot", path=str(path)) as span:
        info = _write_snapshot(index, path, meta=meta)
        span.set(
            nodes=info.get("nodes"),
            edges=info.get("edges"),
            bytes=info.get("file_bytes"),
        )
    telemetry.registry.counter(
        "storage_snapshot_writes_total", help="Snapshots written"
    ).inc()
    telemetry.registry.counter(
        "storage_snapshot_bytes_written_total", help="Snapshot bytes written"
    ).inc(int(info.get("file_bytes") or 0))
    return info


def _write_snapshot(index: GraphIndex, path: str | Path, *, meta: dict | None = None) -> dict:
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    n, m = index.num_nodes, index.num_labels

    node_blob_parts: list[bytes] = []
    node_offs = [0]
    total = 0
    for node in index.nodes_by_id:
        if not isinstance(node, str):
            raise StorageError(
                f"snapshots require string node identifiers, found {type(node).__name__}: "
                f"{node!r}"
            )
        encoded = node.encode("utf-8")
        node_blob_parts.append(encoded)
        total += len(encoded)
        node_offs.append(total)

    label_blob_parts: list[bytes] = []
    label_offs = [0]
    total = 0
    for label in index.labels_by_id:
        encoded = label.encode("utf-8")
        label_blob_parts.append(encoded)
        total += len(encoded)
        label_offs.append(total)

    fwd_offs = b"".join(fmt.i64_bytes(index.fwd_offsets[lid]) for lid in range(m))
    fwd_tgts = b"".join(fmt.i64_bytes(index.fwd_targets[lid]) for lid in range(m))
    bwd_offs = b"".join(fmt.i64_bytes(index.bwd_offsets[lid]) for lid in range(m))
    bwd_tgts = b"".join(fmt.i64_bytes(index.bwd_targets[lid]) for lid in range(m))

    meta_payload = dict(meta or {})
    meta_payload.setdefault("format", "rgz")
    meta_payload.setdefault("writer", "repro.storage")
    meta_blob = json.dumps(meta_payload, sort_keys=True).encode("utf-8")

    payload_parts = {
        "node_offs": fmt.i64_bytes(node_offs),
        "node_blob": b"".join(node_blob_parts),
        "label_offs": fmt.i64_bytes(label_offs),
        "label_blob": b"".join(label_blob_parts),
        "fwd_offs": fwd_offs,
        "fwd_tgts": fwd_tgts,
        "bwd_offs": bwd_offs,
        "bwd_tgts": bwd_tgts,
        "meta": meta_blob,
    }

    # Lay the sections out 8-byte aligned after the header + section table,
    # then checksum the payload exactly as it will appear on disk.
    cursor = fmt.align(fmt.head_size(len(fmt.SECTION_NAMES)))
    payload_start = cursor
    sections: list[tuple[str, int, int]] = []
    chunks: list[bytes] = []
    for name in fmt.SECTION_NAMES:
        data = payload_parts[name]
        aligned = fmt.align(cursor)
        if aligned != cursor:
            chunks.append(b"\x00" * (aligned - cursor))
            cursor = aligned
        sections.append((name, cursor, len(data)))
        chunks.append(data)
        cursor += len(data)
    payload = b"".join(chunks)

    head = fmt.pack_head(
        num_nodes=n,
        num_labels=m,
        edge_count=index.edge_count,
        sections=sections,
        payload_crc32=zlib.crc32(payload),
    )
    padding = b"\x00" * (payload_start - len(head))
    destination.write_bytes(head + padding + payload)
    return snapshot_info(destination)


def open_snapshot(
    path: str | Path,
    *,
    verify: bool = False,
    use_mmap: bool = True,
    telemetry: Telemetry | None = None,
) -> MappedGraphIndex:
    """Open a snapshot as a ready-to-query :class:`MappedGraphIndex`.

    With ``use_mmap`` (the default, on little-endian hosts) the CSR arrays
    are zero-copy views into the file mapping; otherwise the file is read
    into heap arrays (the fallback also handles byte order).  ``verify``
    additionally checks the payload CRC32, which touches every page --
    off by default so that a large snapshot opens lazily.

    The mapped index gets a fresh graph uid and version 0: it represents a
    new, frozen graph identity, so the engine's ``(uid, version)``-keyed
    caches treat it like any other graph.

    ``telemetry``, when given, records a ``storage.open_snapshot`` span and
    bumps ``storage_snapshot_opens_total``.
    """
    telemetry = telemetry if telemetry is not None else _NOOP_TELEMETRY
    source = Path(path)
    if not source.exists():
        raise StorageError(f"snapshot file does not exist: {source}")
    with telemetry.span(
        "storage.open_snapshot", path=str(source), verify=verify
    ) as span:
        file = source.open("rb")
        try:
            try:
                mapping = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError) as error:  # empty file or exotic fs
                raise StorageError(f"cannot map snapshot {source}: {error}") from error
            view = memoryview(mapping)
            try:
                header = fmt.read_head(view)
                if verify:
                    fmt.verify_payload(view, header)
                zero_copy = use_mmap and header.little_endian and sys.byteorder == "little"
                index = _decode(source, header, view, zero_copy=zero_copy)
            except BaseException:
                view.release()
                _close_quietly(mapping)
                raise
            if zero_copy:
                index._file = file
            else:
                # Everything was copied to the heap; the mapping can go now.
                view.release()
                mapping.close()
                file.close()
            span.set(
                nodes=index.num_nodes,
                edges=index.edge_count,
                zero_copy=zero_copy,
            )
        except BaseException:
            file.close()
            raise
    telemetry.registry.counter(
        "storage_snapshot_opens_total", help="Snapshots opened"
    ).inc()
    return index


def _close_quietly(mapping) -> None:
    try:
        mapping.close()
    except BufferError:
        # A stray exported view keeps the pages alive; the mapping is
        # reclaimed when it goes out of scope.
        pass


def _decode(
    source: Path, header: fmt.SnapshotHeader, view: memoryview, *, zero_copy: bool
) -> MappedGraphIndex:
    n, m = header.num_nodes, header.num_labels

    def section_view(name: str) -> memoryview:
        offset, length = header.section(name)
        return view[offset : offset + length]

    def section_i64(name: str, expected_len: int):
        raw = section_view(name)
        if len(raw) != expected_len * 8:
            raise StorageError(
                f"corrupt snapshot: section {name!r} holds {len(raw)} bytes, "
                f"expected {expected_len * 8}"
            )
        return fmt.cast_i64(raw) if zero_copy else fmt.copy_i64(raw)

    node_offs = section_i64("node_offs", n + 1)
    node_blob = section_view("node_blob")
    nodes_by_id = tuple(
        str(node_blob[node_offs[i] : node_offs[i + 1]], "utf-8") for i in range(n)
    )

    label_offs = section_i64("label_offs", m + 1)
    label_blob = section_view("label_blob")
    labels_by_id = tuple(
        str(label_blob[label_offs[i] : label_offs[i + 1]], "utf-8") for i in range(m)
    )

    fwd_offs_all = section_i64("fwd_offs", m * (n + 1))
    bwd_offs_all = section_i64("bwd_offs", m * (n + 1))
    fwd_offsets = [fwd_offs_all[lid * (n + 1) : (lid + 1) * (n + 1)] for lid in range(m)]
    bwd_offsets = [bwd_offs_all[lid * (n + 1) : (lid + 1) * (n + 1)] for lid in range(m)]

    fwd_tgts_all = section_i64("fwd_tgts", header.edge_count)
    bwd_tgts_all = section_i64("bwd_tgts", header.edge_count)
    fwd_targets = []
    bwd_targets = []
    cursor_fwd = cursor_bwd = 0
    for lid in range(m):
        fwd_len = fwd_offsets[lid][n]
        bwd_len = bwd_offsets[lid][n]
        fwd_targets.append(fwd_tgts_all[cursor_fwd : cursor_fwd + fwd_len])
        bwd_targets.append(bwd_tgts_all[cursor_bwd : cursor_bwd + bwd_len])
        cursor_fwd += fwd_len
        cursor_bwd += bwd_len
    if cursor_fwd != header.edge_count or cursor_bwd != header.edge_count:
        raise StorageError(
            "corrupt snapshot: per-label CSR row sums disagree with the header's "
            f"edge count ({cursor_fwd}/{cursor_bwd} vs {header.edge_count})"
        )

    try:
        meta = json.loads(bytes(section_view("meta")).decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StorageError(f"corrupt snapshot: bad meta section: {error}") from error

    mapping = view.obj if zero_copy else None
    return MappedGraphIndex(
        path=source,
        meta=meta,
        mapping=mapping,
        file=None,  # filled by open_snapshot for the zero-copy case
        content_uid=("rgz", str(source.resolve()), header.payload_crc32),
        graph_uid=mint_graph_uid(),
        graph_version=0,
        nodes_by_id=nodes_by_id,
        labels_by_id=labels_by_id,
        fwd_offsets=fwd_offsets,
        fwd_targets=fwd_targets,
        bwd_offsets=bwd_offsets,
        bwd_targets=bwd_targets,
        edge_count=header.edge_count,
    )


def snapshot_info(path: str | Path) -> dict:
    """Header counts, section layout and meta of a snapshot, without decoding
    the node/CSR tables (reads the head and the meta section only)."""
    source = Path(path)
    if not source.exists():
        raise StorageError(f"snapshot file does not exist: {source}")
    file_bytes = source.stat().st_size
    with source.open("rb") as file:
        head = file.read(fmt.head_size(len(fmt.SECTION_NAMES)))
        header = fmt.read_head(head, total_size=file_bytes)
        meta_offset, meta_length = header.section("meta")
        file.seek(meta_offset)
        raw_meta = file.read(meta_length)
    try:
        meta = json.loads(raw_meta.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StorageError(f"corrupt snapshot: bad meta section: {error}") from error
    return {
        "path": str(source),
        "file_bytes": file_bytes,
        "format_version": header.format_version,
        "nodes": header.num_nodes,
        "labels": header.num_labels,
        "edges": header.edge_count,
        "little_endian": header.little_endian,
        "sections": {
            name: {"offset": offset, "length": length}
            for name, (offset, length) in sorted(header.sections.items())
        },
        "meta": meta,
    }
