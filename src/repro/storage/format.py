"""The ``.rgz`` binary snapshot format (layout, header, checksums).

A snapshot file serializes a graph *together with* its prebuilt per-label
CSR index as flat little-endian ``int64`` sections, so that opening it is a
handful of ``mmap`` slice casts instead of an edge-by-edge rebuild::

    +--------------------------------------------------------------+
    | header (56 bytes, crc-protected, see HEADER)                 |
    | section table (section_count x 32-byte entries)              |
    | sections, each 8-byte aligned:                               |
    |   node_offs   (n+1) i64   offsets into node_blob             |
    |   node_blob   utf-8 node names, concatenated                 |
    |   label_offs  (m+1) i64   offsets into label_blob            |
    |   label_blob  utf-8 edge labels, concatenated                |
    |   fwd_offs    m rows of (n+1) i64  per-label CSR offsets     |
    |   fwd_tgts    E i64   per-label CSR targets, concatenated    |
    |   bwd_offs    m rows of (n+1) i64  (reverse adjacency)       |
    |   bwd_tgts    E i64                                          |
    |   meta        UTF-8 JSON (free-form, tool/provenance info)   |
    +--------------------------------------------------------------+

The header carries a CRC32 of itself plus the section table (always
verified on open) and a CRC32 of the payload (verified only on request:
a zero-copy open should not have to fault in every page).  All integers in
the payload are little-endian 8-byte signed; the header flags record this
so a big-endian reader knows it must byteswap (and therefore copy).

This module is deliberately dumb: it knows bytes, offsets and checksums.
:mod:`repro.storage.snapshot` maps the sections onto
:class:`~repro.engine.index.GraphIndex` semantics.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from dataclasses import dataclass

from repro.errors import StorageError

#: File magic: "RGZ" + format generation marker.
MAGIC = b"RGZSNAP1"

#: Bump when the layout changes incompatibly.
FORMAT_VERSION = 1

#: Header flag bit: payload integers are little-endian (always set today).
FLAG_LITTLE_ENDIAN = 1

#: magic, format_version, flags, num_nodes, num_labels, edge_count,
#: section_count, payload_crc32, reserved, header_crc32
HEADER = struct.Struct("<8sIIQQQIIII")

#: name (NUL-padded), absolute offset, length
SECTION_ENTRY = struct.Struct("<16sQQ")

#: The sections every version-1 snapshot must carry, in file order.
SECTION_NAMES = (
    "node_offs",
    "node_blob",
    "label_offs",
    "label_blob",
    "fwd_offs",
    "fwd_tgts",
    "bwd_offs",
    "bwd_tgts",
    "meta",
)

_ALIGNMENT = 8


def align(offset: int) -> int:
    """``offset`` rounded up to the section alignment."""
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def i64_bytes(values) -> bytes:
    """The values as little-endian ``int64`` bytes.

    Accepts any iterable of ints, including :mod:`array` arrays of a
    different item size -- the writer normalizes, so snapshot files do not
    depend on the platform's C ``long`` width.
    """
    if isinstance(values, array) and values.itemsize == 8:
        data = values.tobytes()
        return data if sys.byteorder == "little" else _byteswapped(values).tobytes()
    normalized = array("q", values)
    if sys.byteorder != "little":
        normalized = _byteswapped(normalized)
    return normalized.tobytes()


def _byteswapped(values: array) -> array:
    swapped = array(values.typecode, values)
    swapped.byteswap()
    return swapped


def cast_i64(view: memoryview) -> memoryview:
    """A little-endian ``int64`` element view of raw snapshot bytes.

    Only valid on little-endian hosts (the caller checks the header flags
    and falls back to a copying load elsewhere).
    """
    return view.cast("q")


def copy_i64(data: bytes | memoryview) -> array:
    """A heap :mod:`array` of the little-endian ``int64`` payload bytes."""
    values = array("q")
    values.frombytes(bytes(data))
    if sys.byteorder != "little":
        values.byteswap()
    return values


@dataclass(frozen=True)
class SnapshotHeader:
    """The parsed, checksum-verified head of a snapshot file."""

    format_version: int
    flags: int
    num_nodes: int
    num_labels: int
    edge_count: int
    payload_crc32: int
    sections: dict[str, tuple[int, int]]  # name -> (offset, length)

    @property
    def little_endian(self) -> bool:
        return bool(self.flags & FLAG_LITTLE_ENDIAN)

    def section(self, name: str) -> tuple[int, int]:
        entry = self.sections.get(name)
        if entry is None:
            raise StorageError(f"snapshot is missing the {name!r} section")
        return entry


def pack_head(
    *,
    num_nodes: int,
    num_labels: int,
    edge_count: int,
    sections: list[tuple[str, int, int]],
    payload_crc32: int,
) -> bytes:
    """The header plus section table, with the header CRC filled in."""
    table = b"".join(
        SECTION_ENTRY.pack(name.encode("ascii"), offset, length)
        for name, offset, length in sections
    )
    unsigned = HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        FLAG_LITTLE_ENDIAN,
        num_nodes,
        num_labels,
        edge_count,
        len(sections),
        payload_crc32,
        0,
        0,  # header_crc32 placeholder
    )
    crc = zlib.crc32(unsigned + table)
    signed = unsigned[: HEADER.size - 4] + struct.pack("<I", crc)
    return signed + table


def head_size(section_count: int) -> int:
    """Bytes taken by the header plus a ``section_count``-entry table."""
    return HEADER.size + SECTION_ENTRY.size * section_count


def read_head(buffer, total_size: int | None = None) -> SnapshotHeader:
    """Parse and verify the header + section table of ``buffer``.

    ``buffer`` is anything sliceable to bytes (an ``mmap``, ``bytes``, or
    ``memoryview``) covering at least the head of the file; pass
    ``total_size`` when it does not cover the whole file, so section
    extents can still be bounds-checked.  Raises
    :class:`~repro.errors.StorageError` on any structural problem: wrong
    magic, unsupported version, truncation, or checksum mismatch.
    """
    if total_size is None:
        total_size = len(buffer)
    if len(buffer) < HEADER.size:
        raise StorageError(
            f"not a snapshot: file is {len(buffer)} bytes, the header alone is {HEADER.size}"
        )
    (
        magic,
        format_version,
        flags,
        num_nodes,
        num_labels,
        edge_count,
        section_count,
        payload_crc32,
        _reserved,
        header_crc32,
    ) = HEADER.unpack(bytes(buffer[: HEADER.size]))
    if magic != MAGIC:
        raise StorageError(f"not a snapshot: bad magic {magic!r} (expected {MAGIC!r})")
    if format_version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format version {format_version} "
            f"(this reader understands version {FORMAT_VERSION})"
        )
    table_end = head_size(section_count)
    if len(buffer) < table_end:
        raise StorageError("truncated snapshot: section table cut short")
    table = bytes(buffer[HEADER.size : table_end])
    unsigned = bytes(buffer[: HEADER.size - 4]) + b"\x00\x00\x00\x00"
    if zlib.crc32(unsigned + table) != header_crc32:
        raise StorageError("corrupt snapshot: header checksum mismatch")

    sections: dict[str, tuple[int, int]] = {}
    for position in range(section_count):
        raw_name, offset, length = SECTION_ENTRY.unpack_from(
            table, position * SECTION_ENTRY.size
        )
        name = raw_name.rstrip(b"\x00").decode("ascii")
        if offset + length > total_size:
            raise StorageError(
                f"truncated snapshot: section {name!r} claims bytes "
                f"[{offset}, {offset + length}) but the file has {total_size}"
            )
        sections[name] = (offset, length)
    for name in SECTION_NAMES:
        if name not in sections:
            raise StorageError(f"snapshot is missing the {name!r} section")
    return SnapshotHeader(
        format_version=format_version,
        flags=flags,
        num_nodes=num_nodes,
        num_labels=num_labels,
        edge_count=edge_count,
        payload_crc32=payload_crc32,
        sections=sections,
    )


def verify_payload(buffer, header: SnapshotHeader) -> None:
    """Check the payload CRC (touches every page; opt-in for that reason)."""
    payload_start = head_size(len(header.sections))
    if zlib.crc32(bytes(buffer[payload_start:])) != header.payload_crc32:
        raise StorageError("corrupt snapshot: payload checksum mismatch")
