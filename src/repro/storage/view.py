"""A frozen, graph-shaped view over a prebuilt CSR index.

:class:`GraphView` lets a snapshot (or any ready
:class:`~repro.engine.index.GraphIndex`) be used wherever a
:class:`~repro.graphdb.graph.GraphDB` is expected -- queries, workspaces,
experiment drivers -- without rebuilding adjacency dictionaries.  It
answers the read API (membership, node/label order, successors,
degrees, ...) straight from the CSR arrays and advertises the index via
``prebuilt_index``, which :meth:`QueryEngine.index_for
<repro.engine.engine.QueryEngine.index_for>` adopts instead of building.

The view is *frozen*: it shares the index's ``(uid, version)`` identity,
and mutating it raises :class:`~repro.errors.GraphError`.  Call
:meth:`GraphView.thaw` for a fully mutable :class:`GraphDB` copy (a fresh
graph identity with its own delta log); rarely-used whole-graph helpers
(``subgraph``, ``neighborhood``, cycle checks) delegate to a lazily built
thawed twin rather than reimplementing traversal logic here.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.automata.alphabet import Alphabet
from repro.engine.index import GraphIndex
from repro.errors import GraphError
from repro.graphdb.graph import Edge, GraphDB, Node

_FROZEN = (
    "this graph is a frozen snapshot view; call .thaw() for a mutable GraphDB copy"
)


class GraphView:
    """A read-only graph API over a :class:`GraphIndex` (mapped or built)."""

    def __init__(self, index: GraphIndex) -> None:
        self._index = index
        self._edges: frozenset[Edge] | None = None
        self._thawed_cache: GraphDB | None = None
        self._alphabet: Alphabet | None = None

    # -- identity (shared with the index, so the engine adopts it) ----------

    @property
    def prebuilt_index(self) -> GraphIndex:
        """The ready CSR index the query engine consumes unchanged."""
        return self._index

    @property
    def uid(self) -> int:
        return self._index.graph_uid

    @property
    def version(self) -> int:
        return self._index.graph_version

    @property
    def content_uid(self) -> tuple | None:
        """The snapshot's stable (path, checksum) identity, if mapped.

        Heap-built indexes have no content identity and return ``None``;
        the engine then falls back to the process-minted ``uid``.
        """
        return getattr(self._index, "content_uid", None)

    # -- read API ------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[Node]:
        return frozenset(self._index.nodes_by_id)

    @property
    def node_order(self) -> tuple[Node, ...]:
        return self._index.nodes_by_id

    @property
    def label_order(self) -> tuple[str, ...]:
        return self._index.labels_by_id

    def labels(self) -> frozenset[str]:
        return frozenset(self._index.labels_by_id)

    def _declared_alphabet(self) -> list[str] | None:
        # Snapshots persist a graph's declared (fixed) alphabet in their
        # meta JSON; honor it so the view parses the same query set.
        meta = getattr(self._index, "meta", None)
        declared = meta.get("alphabet") if isinstance(meta, dict) else None
        if isinstance(declared, list) and all(isinstance(s, str) for s in declared):
            return declared
        return None

    @property
    def has_fixed_alphabet(self) -> bool:
        return self._declared_alphabet() is not None

    @property
    def alphabet(self) -> Alphabet:
        if self._alphabet is None:
            declared = self._declared_alphabet()
            if declared is not None:
                self._alphabet = Alphabet(declared)
            elif self._index.labels_by_id:
                self._alphabet = Alphabet(self._index.labels_by_id)
            else:
                raise GraphError("the graph has no labels and no declared alphabet")
        return self._alphabet

    @property
    def edges(self) -> frozenset[Edge]:
        if self._edges is None:
            self._edges = frozenset(self.iter_edges())
        return self._edges

    def iter_edges(self) -> Iterator[Edge]:
        """Yield every edge by walking the forward CSR (no materialization)."""
        index = self._index
        nodes_by_id = index.nodes_by_id
        for label_id, label in enumerate(index.labels_by_id):
            offsets = index.fwd_offsets[label_id]
            targets = index.fwd_targets[label_id]
            for node_id in range(index.num_nodes):
                origin = nodes_by_id[node_id]
                for target_id in targets[offsets[node_id] : offsets[node_id + 1]]:
                    yield (origin, label, nodes_by_id[target_id])

    def node_count(self) -> int:
        return self._index.num_nodes

    def edge_count(self) -> int:
        return self._index.edge_count

    def __len__(self) -> int:
        return self._index.num_nodes

    def __contains__(self, node: object) -> bool:
        return node in self._index.node_ids

    def __repr__(self) -> str:
        return (
            f"GraphView(nodes={self._index.num_nodes}, edges={self._index.edge_count}, "
            "frozen)"
        )

    def has_edge(self, origin: Node, label: str, end: Node) -> bool:
        index = self._index
        origin_id = index.node_ids.get(origin)
        end_id = index.node_ids.get(end)
        label_id = index.label_ids.get(label)
        if origin_id is None or end_id is None or label_id is None:
            return False
        return end_id in index.successors_slice(label_id, origin_id)

    # -- adjacency -----------------------------------------------------------

    def _node_id(self, node: Node) -> int:
        node_id = self._index.node_ids.get(node)
        if node_id is None:
            raise GraphError(f"node {node!r} is not in the graph")
        return node_id

    def successors(self, node: Node, label: str | None = None) -> frozenset[Node]:
        return self._adjacent(node, label, forward=True)

    def predecessors(self, node: Node, label: str | None = None) -> frozenset[Node]:
        return self._adjacent(node, label, forward=False)

    def _adjacent(self, node: Node, label: str | None, *, forward: bool) -> frozenset[Node]:
        index = self._index
        node_id = self._node_id(node)
        slice_of = index.successors_slice if forward else index.predecessors_slice
        nodes_by_id = index.nodes_by_id
        if label is not None:
            label_id = index.label_ids.get(label)
            if label_id is None:
                return frozenset()
            return frozenset(nodes_by_id[t] for t in slice_of(label_id, node_id))
        result: set[Node] = set()
        for label_id in range(index.num_labels):
            result.update(nodes_by_id[t] for t in slice_of(label_id, node_id))
        return frozenset(result)

    def out_edges(self, node: Node) -> Iterator[tuple[str, Node]]:
        index = self._index
        node_id = self._node_id(node)
        for label_id, label in enumerate(index.labels_by_id):
            for target_id in index.successors_slice(label_id, node_id):
                yield label, index.nodes_by_id[target_id]

    def in_edges(self, node: Node) -> Iterator[tuple[Node, str]]:
        index = self._index
        node_id = self._node_id(node)
        for label_id, label in enumerate(index.labels_by_id):
            for source_id in index.predecessors_slice(label_id, node_id):
                yield index.nodes_by_id[source_id], label

    def out_degree(self, node: Node) -> int:
        index = self._index
        node_id = self._node_id(node)
        return sum(
            index.fwd_offsets[label_id][node_id + 1] - index.fwd_offsets[label_id][node_id]
            for label_id in range(index.num_labels)
        )

    def in_degree(self, node: Node) -> int:
        index = self._index
        node_id = self._node_id(node)
        return sum(
            index.bwd_offsets[label_id][node_id + 1] - index.bwd_offsets[label_id][node_id]
            for label_id in range(index.num_labels)
        )

    def outgoing_labels(self, node: Node) -> frozenset[str]:
        index = self._index
        node_id = self._node_id(node)
        return frozenset(
            label
            for label_id, label in enumerate(index.labels_by_id)
            if index.fwd_offsets[label_id][node_id + 1] > index.fwd_offsets[label_id][node_id]
        )

    def label_histogram(self) -> dict[str, int]:
        index = self._index
        return {
            label: index.fwd_offsets[label_id][index.num_nodes]
            for label_id, label in enumerate(index.labels_by_id)
        }

    def degree_statistics(self) -> Mapping[str, float]:
        if not self._index.num_nodes:
            return {"max_out_degree": 0.0, "mean_out_degree": 0.0}
        degrees = [self.out_degree(node) for node in self.node_order]
        return {
            "max_out_degree": float(max(degrees)),
            "mean_out_degree": float(sum(degrees)) / len(degrees),
        }

    # -- whole-graph helpers (delegated to a lazily thawed twin) -------------

    def _thawed(self) -> GraphDB:
        if self._thawed_cache is None:
            self._thawed_cache = self.thaw()
        return self._thawed_cache

    def reachable_from(self, node: Node, *, max_hops: int | None = None) -> frozenset[Node]:
        return self._thawed().reachable_from(node, max_hops=max_hops)

    def neighborhood(self, node: Node, radius: int) -> GraphDB:
        return self._thawed().neighborhood(node, radius)

    def subgraph(self, nodes: Iterable[Node]) -> GraphDB:
        return self._thawed().subgraph(nodes)

    def has_cycle_reachable_from(self, node: Node) -> bool:
        return self._thawed().has_cycle_reachable_from(node)

    def to_networkx(self):  # pragma: no cover - optional convenience
        return self._thawed().to_networkx()

    # -- freezing and thawing --------------------------------------------------

    def thaw(self) -> GraphDB:
        """A fully mutable :class:`GraphDB` with this view's content.

        The copy is a *new* graph identity (fresh uid, version counting
        from its construction), inserted in the view's stable node order so
        derived indexes number nodes identically.  A declared alphabet
        carried by the snapshot stays declared on the copy.
        """
        graph = GraphDB(self._declared_alphabet())
        graph.add_nodes(self.node_order)
        graph.add_edges(self.iter_edges())
        return graph

    def copy(self) -> GraphDB:
        """Alias of :meth:`thaw` (mirrors :meth:`GraphDB.copy`)."""
        return self.thaw()

    # -- refused mutations -----------------------------------------------------

    def add_node(self, node: Node) -> Node:
        raise GraphError(_FROZEN)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        raise GraphError(_FROZEN)

    def add_edge(self, origin: Node, label: str, end: Node) -> Edge:
        raise GraphError(_FROZEN)

    def add_edges(self, edges: Iterable[tuple[Node, str, Node]]) -> None:
        raise GraphError(_FROZEN)
