"""N-ary path queries (Appendix B of the paper).

An n-ary path query is a sequence of ``n-1`` regular expressions
``Q = (q1, ..., q_{n-1})``; it selects the tuples ``(nu_1, ..., nu_n)`` such
that for every position ``i`` there is a path from ``nu_i`` to ``nu_{i+1}``
whose word belongs to ``L(q_i)``.  Algorithm 3 learns such queries by
learning one binary query per position.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.alphabet import Alphabet
from repro.errors import QueryError
from repro.graphdb.graph import GraphDB, Node
from repro.queries.binary import BinaryPathQuery


class NaryPathQuery:
    """An n-ary path query: a sequence of binary queries applied position-wise."""

    def __init__(self, components: Sequence[BinaryPathQuery]) -> None:
        if not components:
            raise QueryError("an n-ary query needs at least one component expression")
        self._components = tuple(components)

    @classmethod
    def parse(
        cls,
        expressions: Sequence[str],
        alphabet: Alphabet | Iterable[str] | None = None,
    ) -> "NaryPathQuery":
        """Build an n-ary query from ``n-1`` regular-expression strings."""
        return cls([BinaryPathQuery.parse(expr, alphabet) for expr in expressions])

    @property
    def components(self) -> tuple[BinaryPathQuery, ...]:
        """The per-position binary queries ``(q1, ..., q_{n-1})``."""
        return self._components

    @property
    def arity(self) -> int:
        """The arity ``n`` of the selected tuples."""
        return len(self._components) + 1

    @property
    def size(self) -> int:
        """The maximal size of a component query (the paper's ``npq<=s`` measure)."""
        return max(component.size for component in self._components)

    @property
    def expressions(self) -> tuple[str, ...]:
        """The component expressions, for display."""
        return tuple(component.expression for component in self._components)

    def __repr__(self) -> str:
        return f"NaryPathQuery({list(self.expressions)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NaryPathQuery):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def selects(self, graph: GraphDB, nodes: Sequence[Node]) -> bool:
        """Whether the query selects the given node tuple."""
        if len(nodes) != self.arity:
            raise QueryError(
                f"expected a tuple of {self.arity} nodes, got {len(nodes)}"
            )
        return all(
            component.selects(graph, nodes[index], nodes[index + 1])
            for index, component in enumerate(self._components)
        )

    def evaluate(self, graph: GraphDB, *, limit: int | None = None) -> frozenset[tuple[Node, ...]]:
        """The selected tuples.

        The result is assembled by joining the per-position binary results,
        so it stays polynomial in the graph even though the tuple space is
        ``|V|^n``.  ``limit`` caps the number of returned tuples (useful on
        large graphs where the join can still be big).
        """
        per_position = [component.evaluate(graph) for component in self._components]
        # Index pairs by their first element for the join.
        indexed: list[dict[Node, list[Node]]] = []
        for pairs in per_position:
            index: dict[Node, list[Node]] = {}
            for origin, end in pairs:
                index.setdefault(origin, []).append(end)
            indexed.append(index)

        results: set[tuple[Node, ...]] = set()

        def extend(prefix: tuple[Node, ...]) -> None:
            if limit is not None and len(results) >= limit:
                return
            position = len(prefix) - 1
            if position == len(indexed):
                results.add(prefix)
                return
            for nxt in indexed[position].get(prefix[-1], ()):
                extend(prefix + (nxt,))
                if limit is not None and len(results) >= limit:
                    return

        for start in indexed[0]:
            extend((start,))
            if limit is not None and len(results) >= limit:
                break
        return frozenset(results)

    def is_consistent_with(
        self,
        graph: GraphDB,
        positives: Iterable[Sequence[Node]],
        negatives: Iterable[Sequence[Node]],
    ) -> bool:
        """Whether the query selects every positive tuple and no negative tuple."""
        return all(self.selects(graph, tuple(t)) for t in positives) and not any(
            self.selects(graph, tuple(t)) for t in negatives
        )
