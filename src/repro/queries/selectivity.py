"""Query selectivity measurements (Table 1 of the paper).

The paper characterizes each workload query by its *selectivity*: the
percentage of graph nodes it selects (from 0.03% for bio1 up to 22% for
bio6).  The experiment drivers use these helpers both to report the Table 1
reproduction and to pick positive/negative examples proportionally.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import QueryError
from repro.graphdb.graph import GraphDB
from repro.queries.path_query import PathQuery


def selectivity(query: PathQuery, graph: GraphDB) -> float:
    """The fraction of graph nodes selected by the query (0.0 - 1.0)."""
    return query.selectivity(graph)


def selectivity_report(
    queries: Mapping[str, PathQuery] | Sequence[tuple[str, PathQuery]],
    graph: GraphDB,
) -> dict[str, dict[str, float | int | str]]:
    """Selectivity statistics for a named set of queries on one graph.

    Returns, per query name: the expression, the number of selected nodes,
    and the selectivity both as a fraction and as a percentage -- the three
    columns needed to regenerate Table 1.
    """
    if graph.node_count() == 0:
        raise QueryError("selectivity is undefined on an empty graph")
    items = queries.items() if isinstance(queries, Mapping) else list(queries)
    report: dict[str, dict[str, float | int | str]] = {}
    for name, query in items:
        selected = query.evaluate(graph)
        fraction = len(selected) / graph.node_count()
        report[name] = {
            "expression": query.expression,
            "selected_nodes": len(selected),
            "selectivity": fraction,
            "selectivity_percent": 100.0 * fraction,
        }
    return report
