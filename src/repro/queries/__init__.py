"""Path queries and their semantics.

* :class:`~repro.queries.path_query.PathQuery` -- monadic path queries (the
  paper's main query class ``pq``): a regular expression selecting every
  node from which some path spells a word of the language.
* :class:`~repro.queries.binary.BinaryPathQuery` -- binary semantics (pairs
  of nodes linked by a matching path).
* :class:`~repro.queries.nary.NaryPathQuery` -- n-ary semantics (tuples of
  nodes linked position-by-position by n-1 regular expressions).
* :mod:`repro.queries.selectivity` -- selectivity measurements used by the
  experiment drivers (Table 1 reports query selectivities).
"""

from repro.queries.path_query import PathQuery
from repro.queries.binary import BinaryPathQuery
from repro.queries.nary import NaryPathQuery
from repro.queries.selectivity import selectivity, selectivity_report

__all__ = [
    "PathQuery",
    "BinaryPathQuery",
    "NaryPathQuery",
    "selectivity",
    "selectivity_report",
]
