"""Monadic path queries (the paper's class ``pq``).

A path query is a regular expression ``q``; on a graph ``G`` it selects::

    q(G) = { nu in G | L(q) & paths_G(nu) != {} }

A :class:`PathQuery` wraps the canonical DFA of the expression (the paper's
query representation) together with, when available, the source expression
for readable display.  Instances are immutable value objects: equality is
language equivalence, hashing uses the relabeled canonical structure.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import cached_property

from repro.automata.alphabet import Alphabet, Word
from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa
from repro.automata.nfa import NFA
from repro.automata.operations import language_equivalent
from repro.automata.prefix_free import is_prefix_free, prefix_free
from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import QueryError
from repro.graphdb.graph import GraphDB, Node
from repro.regex.ast import Regex
from repro.regex.build import compile_query
from repro.regex.convert import dfa_to_regex


class PathQuery:
    """A monadic regular path query, represented by its canonical DFA."""

    def __init__(self, dfa: DFA, *, expression: str | None = None) -> None:
        self._dfa = canonical_dfa(dfa)
        self._expression = expression

    # -- constructors ---------------------------------------------------------

    @classmethod
    def parse(
        cls,
        expression: str | Regex,
        alphabet: Alphabet | Iterable[str] | None = None,
    ) -> "PathQuery":
        """Build a query from a regular-expression string (or AST).

        Passing the graph's alphabet lets the query be evaluated on graphs
        that use labels not mentioned in the expression.
        """
        dfa = compile_query(expression, alphabet)
        text = expression if isinstance(expression, str) else str(expression)
        return cls(dfa, expression=text)

    @classmethod
    def from_automaton(cls, automaton: DFA | NFA) -> "PathQuery":
        """Build a query from any automaton (canonicalized on construction)."""
        dfa = automaton if isinstance(automaton, DFA) else canonical_dfa(automaton)
        return cls(dfa)

    @classmethod
    def from_words(cls, alphabet: Alphabet, words: Iterable[Sequence[str]]) -> "PathQuery":
        """The disjunction-of-words query selecting nodes with one of the given paths."""
        word_list = [tuple(word) for word in words]
        if not word_list:
            raise QueryError("a disjunction-of-words query needs at least one word")
        return cls(canonical_dfa(NFA.from_words(alphabet, word_list)))

    # -- basic accessors -------------------------------------------------------

    @property
    def dfa(self) -> DFA:
        """The canonical DFA representing the query."""
        return self._dfa

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet the query is defined over."""
        return self._dfa.alphabet

    @property
    def size(self) -> int:
        """The size of the query: number of states of its canonical DFA."""
        return len(self._dfa)

    @cached_property
    def expression(self) -> str:
        """A regular-expression rendering of the query.

        The original expression string if the query was parsed from one,
        otherwise an expression recovered from the DFA by state elimination.
        """
        if self._expression is not None:
            return self._expression
        return str(dfa_to_regex(self._dfa))

    def __repr__(self) -> str:
        return f"PathQuery({self.expression!r}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathQuery):
            return NotImplemented
        return self.equivalent_to(other)

    def __hash__(self) -> int:
        dfa = self._dfa
        return hash(
            (
                dfa.alphabet,
                len(dfa),
                frozenset(dfa.final_states),
                frozenset(dfa.transitions()),
            )
        )

    # -- language-level operations ---------------------------------------------

    def accepts_word(self, word: Sequence[str]) -> bool:
        """Whether the word belongs to the query's language."""
        return self._dfa.accepts(word)

    def is_empty(self) -> bool:
        """Whether the query language is empty (selects nothing on any graph)."""
        return self._dfa.is_empty()

    def is_prefix_free(self) -> bool:
        """Whether the query is prefix-free (Section 2)."""
        return is_prefix_free(self._dfa)

    def prefix_free_form(self) -> "PathQuery":
        """The equivalent prefix-free query (the minimal representative)."""
        return PathQuery(prefix_free(self._dfa))

    def equivalent_to(self, other: "PathQuery") -> bool:
        """Language equivalence of the two queries.

        Under monadic semantics, two queries select the same nodes on every
        graph iff their *prefix-free forms* have the same language (e.g.
        ``a`` and ``a.b*`` are equivalent queries); that is the notion
        implemented here.
        """
        return language_equivalent(
            prefix_free(self._dfa), prefix_free(other._dfa)
        )

    # -- evaluation on graphs ----------------------------------------------------

    def evaluate(self, graph: GraphDB, *, engine: QueryEngine | None = None) -> frozenset[Node]:
        """The set of nodes selected on ``graph`` (monadic semantics).

        Evaluation goes through the (by default shared) query engine: the
        graph is CSR-indexed once per version, the canonical DFA compiles to
        a cached plan, and whole-graph results are cached per graph version.
        """
        return (engine or get_default_engine()).evaluate(graph, self._dfa)

    def selects(self, graph: GraphDB, node: Node, *, engine: QueryEngine | None = None) -> bool:
        """Whether the query selects one given node of ``graph``."""
        return (engine or get_default_engine()).selects(graph, self._dfa, node)

    def selectivity(self, graph: GraphDB, *, engine: QueryEngine | None = None) -> float:
        """The fraction of graph nodes selected by the query (0.0 - 1.0)."""
        if graph.node_count() == 0:
            raise QueryError("selectivity is undefined on an empty graph")
        return len(self.evaluate(graph, engine=engine)) / graph.node_count()

    def equivalent_on(
        self, other: "PathQuery", graph: GraphDB, *, engine: QueryEngine | None = None
    ) -> bool:
        """Whether the two queries select the same node set on this graph.

        This is the "indistinguishable by the user" notion of Section 3.3:
        weaker than language equivalence, and the halt condition used by the
        interactive experiments.
        """
        return self.evaluate(graph, engine=engine) == other.evaluate(graph, engine=engine)

    def is_consistent_with(
        self,
        graph: GraphDB,
        positives: Iterable[Node],
        negatives: Iterable[Node],
        *,
        engine: QueryEngine | None = None,
    ) -> bool:
        """Whether the query selects every positive node and no negative node."""
        return all(self.selects(graph, node, engine=engine) for node in positives) and not any(
            self.selects(graph, node, engine=engine) for node in negatives
        )

    def shortest_word(self) -> Word | None:
        """The canonically smallest word in the query language, if any."""
        return self._dfa.shortest_accepted_word()

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe representation: the expression and its alphabet."""
        return {
            "expression": self.expression,
            "alphabet": list(self.alphabet),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PathQuery":
        """Rebuild a query from :meth:`to_dict` output (language-faithful)."""
        if not isinstance(payload, dict) or "expression" not in payload:
            raise QueryError("a serialized query needs an 'expression' entry")
        return cls.parse(payload["expression"], payload.get("alphabet"))
