"""Binary path queries (Appendix B of the paper).

Under the binary semantics a query ``q`` selects the pairs of nodes
``(nu, nu')`` such that some path from ``nu`` to ``nu'`` spells a word of
``L(q)``.  This is the classical regular-path-query semantics; the paper's
monadic class generalizes it, and Algorithm 2 learns it with the same
machinery (only the candidate-path space per example changes).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.minimize import canonical_dfa
from repro.automata.nfa import NFA
from repro.automata.operations import language_equivalent
from repro.engine.engine import QueryEngine, get_default_engine
from repro.errors import QueryError
from repro.graphdb.graph import GraphDB, Node
from repro.regex.ast import Regex
from repro.regex.build import compile_query
from repro.regex.convert import dfa_to_regex


class BinaryPathQuery:
    """A regular path query under the binary (pairs-of-nodes) semantics."""

    def __init__(self, dfa: DFA, *, expression: str | None = None) -> None:
        self._dfa = canonical_dfa(dfa)
        self._expression = expression

    @classmethod
    def parse(
        cls,
        expression: str | Regex,
        alphabet: Alphabet | Iterable[str] | None = None,
    ) -> "BinaryPathQuery":
        """Build a binary query from a regular expression string (or AST)."""
        dfa = compile_query(expression, alphabet)
        text = expression if isinstance(expression, str) else str(expression)
        return cls(dfa, expression=text)

    @classmethod
    def from_automaton(cls, automaton: DFA | NFA) -> "BinaryPathQuery":
        """Build a binary query from any automaton."""
        return cls(canonical_dfa(automaton))

    @property
    def dfa(self) -> DFA:
        """The canonical DFA representing the query."""
        return self._dfa

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet the query is defined over."""
        return self._dfa.alphabet

    @property
    def size(self) -> int:
        """The number of states of the canonical DFA."""
        return len(self._dfa)

    @property
    def expression(self) -> str:
        """A regular-expression rendering of the query."""
        if self._expression is not None:
            return self._expression
        return str(dfa_to_regex(self._dfa))

    def __repr__(self) -> str:
        return f"BinaryPathQuery({self.expression!r}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryPathQuery):
            return NotImplemented
        # Binary semantics distinguishes prefixes (the end node is observed),
        # so equivalence is plain language equivalence.
        return language_equivalent(self._dfa, other._dfa)

    def __hash__(self) -> int:
        dfa = self._dfa
        return hash((dfa.alphabet, len(dfa), frozenset(dfa.final_states)))

    def evaluate(
        self, graph: GraphDB, *, engine: QueryEngine | None = None
    ) -> frozenset[tuple[Node, Node]]:
        """The set of node pairs selected on ``graph``."""
        return (engine or get_default_engine()).binary_evaluate(graph, self._dfa)

    def selects(
        self, graph: GraphDB, origin: Node, end: Node, *, engine: QueryEngine | None = None
    ) -> bool:
        """Whether the query selects the pair ``(origin, end)``."""
        return (engine or get_default_engine()).pair_selects(graph, self._dfa, origin, end)

    def selectivity(self, graph: GraphDB, *, engine: QueryEngine | None = None) -> float:
        """The fraction of node pairs selected (0.0 - 1.0)."""
        total = graph.node_count() ** 2
        if total == 0:
            raise QueryError("selectivity is undefined on an empty graph")
        return len(self.evaluate(graph, engine=engine)) / total

    def is_consistent_with(
        self,
        graph: GraphDB,
        positives: Iterable[tuple[Node, Node]],
        negatives: Iterable[tuple[Node, Node]],
        *,
        engine: QueryEngine | None = None,
    ) -> bool:
        """Whether the query selects every positive pair and no negative pair."""
        return all(self.selects(graph, *pair, engine=engine) for pair in positives) and not any(
            self.selects(graph, *pair, engine=engine) for pair in negatives
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe representation: the expression and its alphabet."""
        return {
            "expression": self.expression,
            "alphabet": list(self.alphabet),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BinaryPathQuery":
        """Rebuild a query from :meth:`to_dict` output (language-faithful)."""
        if not isinstance(payload, dict) or "expression" not in payload:
            raise QueryError("a serialized query needs an 'expression' entry")
        return cls.parse(payload["expression"], payload.get("alphabet"))
