"""The public, typed API of the repro library.

One facade (:class:`Workspace`), frozen config dataclasses
(:class:`EngineConfig`, :class:`TelemetryConfig`, :class:`LearnerConfig`,
:class:`InteractiveConfig`, :class:`ExperimentConfig`, :class:`StorageConfig`),
one uniform :class:`Result` protocol with a JSON round-trip, and the
``python -m repro`` CLI on top (:mod:`repro.api.cli`).

The legacy module-level entry points (``learn_path_query``,
``run_interactive_learning``, ``run_static_experiment``, ...) remain
available as thin compatibility shims; new code should go through a
workspace so engine wiring, cache statistics and result serialization are
uniform.
"""

from repro.api.config import (
    PLANNERS,
    SCENARIOS,
    SEMANTICS,
    STRATEGIES,
    EngineConfig,
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    ServiceConfig,
    StorageConfig,
    TelemetryConfig,
)
from repro.api.result import (
    RESULT_TYPES,
    ExplainResult,
    QueryResult,
    Result,
    result_from_dict,
    result_from_json,
    result_to_json,
)
from repro.api.workspace import FIGURE_GRAPHS, Workspace

__all__ = [
    "Workspace",
    "FIGURE_GRAPHS",
    # configs
    "EngineConfig",
    "TelemetryConfig",
    "LearnerConfig",
    "InteractiveConfig",
    "ExperimentConfig",
    "ServiceConfig",
    "StorageConfig",
    "SEMANTICS",
    "SCENARIOS",
    "STRATEGIES",
    "PLANNERS",
    # results
    "Result",
    "QueryResult",
    "ExplainResult",
    "RESULT_TYPES",
    "result_from_dict",
    "result_from_json",
    "result_to_json",
]
