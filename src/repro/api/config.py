"""Typed, validated configuration objects for the public :class:`Workspace` API.

Each config is a frozen dataclass that validates itself on construction
(raising :class:`~repro.errors.ConfigError` on bad values) and round-trips
through JSON-safe dictionaries (``to_dict``/``from_dict``).  They replace the
scattered keyword arguments of the legacy module-level entry points:

* :class:`EngineConfig`       -- cache sizing of a :class:`~repro.engine.QueryEngine`;
* :class:`TelemetryConfig`    -- the observability layer (tracing, profiling);
* :class:`LearnerConfig`      -- Algorithm 1/2/3 parameters (``k``, semantics, ...);
* :class:`InteractiveConfig`  -- the Figure 9 loop (strategy, budgets, halt);
* :class:`ExperimentConfig`   -- the Section 5 experiment drivers;
* :class:`StorageConfig`      -- the storage layer (snapshots, catalog, mmap);
* :class:`ServiceConfig`      -- the ``repro serve`` daemon (admission, batching).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

from repro.errors import ConfigError

#: The learner semantics a :class:`LearnerConfig` can select.
SEMANTICS = ("path", "binary", "nary")

#: The experiment scenarios an :class:`ExperimentConfig` can select.
SCENARIOS = ("static", "interactive")

#: The interactive strategies the paper evaluates (plus the naive baseline).
STRATEGIES = ("kR", "kS", "random")

#: The kernel backends an :class:`EngineConfig` can select.
BACKENDS = ("auto", "python", "numpy")

#: The planner modes an :class:`EngineConfig` can select.
PLANNERS = ("auto", "off")


class _BaseConfig:
    """Shared JSON plumbing of the four config dataclasses."""

    #: Renamed fields still accepted (with a :class:`DeprecationWarning`)
    #: by :meth:`from_dict`; subclasses override.  ``{old_name: new_name}``.
    _LEGACY_FIELDS: dict = {}

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_dict(cls, payload: dict):
        """Build (and validate) a config from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise ConfigError(f"{cls.__name__} payload must be a dict, got {type(payload).__name__}")
        if cls._LEGACY_FIELDS and any(old in payload for old in cls._LEGACY_FIELDS):
            import warnings

            payload = dict(payload)
            for old, new in cls._LEGACY_FIELDS.items():
                if old not in payload:
                    continue
                if new in payload:
                    raise ConfigError(
                        f"{cls.__name__} got both {old!r} (deprecated) and {new!r}"
                    )
                warnings.warn(
                    f"{cls.__name__} field {old!r} is deprecated; use {new!r}",
                    DeprecationWarning,
                    stacklevel=2,
                )
                payload[new] = payload.pop(old)
        known = {spec.name: spec for spec in fields(cls)}
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ConfigError(f"unknown {cls.__name__} fields: {unknown!r}")
        kwargs = {}
        for name, value in payload.items():
            if isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    def replace(self, **changes):
        """A copy with the given fields changed (re-validated on construction)."""
        return dataclasses.replace(self, **changes)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class EngineConfig(_BaseConfig):
    """Cache sizing and index-maintenance policy of a per-workspace
    :class:`~repro.engine.QueryEngine`.

    ``incremental_refresh`` lets a stale CSR index be refreshed from the
    graph's mutation delta log instead of rebuilt; ``refresh_ratio`` is the
    delta-to-index size ratio beyond which refresh falls back to a rebuild.

    ``backend`` selects the whole-graph kernel implementation (``"auto"``:
    numpy when importable, else the pure-python reference); ``workers``
    above 1 fans whole-graph evaluations on snapshot-backed graphs with at
    least ``min_shard_edges`` edges across a process pool.

    ``planner`` turns the cost-based planning layer on (``"auto"``, the
    default: parity-pinned automaton rewriting, selectivity-ordered
    early-exit plans, and -- with ``backend="auto"`` -- per-query kernel
    choice from the CSR cost model) or ``"off"`` (verbatim compilation,
    fixed dispatch).  ``max_rewrite_passes`` bounds the rewriter;
    ``cache_budget_bytes`` adds a byte budget to the result cache's LRU
    eviction (None: entry-count bound only).
    """

    _LEGACY_FIELDS = {
        "planner_mode": "planner",
        "rewrite_passes": "max_rewrite_passes",
        "cache_budget": "cache_budget_bytes",
    }

    plan_cache_size: int = 256
    result_cache_size: int = 1024
    incremental_refresh: bool = True
    refresh_ratio: float = 0.25
    backend: str = "auto"
    workers: int = 1
    min_shard_edges: int = 50_000
    planner: str = "auto"
    max_rewrite_passes: int = 3
    cache_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.plan_cache_size, int) and self.plan_cache_size >= 1,
            f"plan_cache_size must be a positive int, got {self.plan_cache_size!r}",
        )
        _require(
            isinstance(self.result_cache_size, int) and self.result_cache_size >= 1,
            f"result_cache_size must be a positive int, got {self.result_cache_size!r}",
        )
        _require(
            isinstance(self.incremental_refresh, bool),
            f"incremental_refresh must be a bool, got {self.incremental_refresh!r}",
        )
        _require(
            isinstance(self.refresh_ratio, (int, float)) and self.refresh_ratio >= 0,
            f"refresh_ratio must be a non-negative number, got {self.refresh_ratio!r}",
        )
        _require(
            self.backend in BACKENDS,
            f"backend must be one of {BACKENDS}, got {self.backend!r}",
        )
        _require(
            isinstance(self.workers, int) and self.workers >= 1,
            f"workers must be a positive int, got {self.workers!r}",
        )
        _require(
            isinstance(self.min_shard_edges, int) and self.min_shard_edges >= 0,
            f"min_shard_edges must be a non-negative int, got {self.min_shard_edges!r}",
        )
        _require(
            self.planner in PLANNERS,
            f"planner must be one of {PLANNERS}, got {self.planner!r}",
        )
        _require(
            isinstance(self.max_rewrite_passes, int) and self.max_rewrite_passes >= 0,
            f"max_rewrite_passes must be a non-negative int, got {self.max_rewrite_passes!r}",
        )
        _require(
            self.cache_budget_bytes is None
            or (isinstance(self.cache_budget_bytes, int) and self.cache_budget_bytes >= 1),
            f"cache_budget_bytes must be None or a positive int, got {self.cache_budget_bytes!r}",
        )

    def build(self, telemetry=None):
        """A fresh :class:`~repro.engine.QueryEngine` with this sizing.

        ``telemetry`` is an optional :class:`~repro.telemetry.Telemetry`
        facade the engine should report into (None: a fresh disabled one).
        """
        from repro.engine.engine import QueryEngine

        return QueryEngine(
            plan_cache_size=self.plan_cache_size,
            result_cache_size=self.result_cache_size,
            incremental_refresh=self.incremental_refresh,
            refresh_ratio=float(self.refresh_ratio),
            telemetry=telemetry,
            backend=self.backend,
            workers=self.workers,
            min_shard_edges=self.min_shard_edges,
            planner=self.planner,
            max_rewrite_passes=self.max_rewrite_passes,
            cache_budget_bytes=self.cache_budget_bytes,
        )


@dataclass(frozen=True)
class TelemetryConfig(_BaseConfig):
    """Parameters of the observability layer of one workspace/engine.

    ``enabled`` turns on structured tracing (spans buffered in a ring and,
    when ``trace_path`` is set, appended as JSON Lines with size-based
    rotation); ``profile`` attaches per-query execution profiles to
    :class:`~repro.api.QueryResult` objects and interactive rounds.  All off
    by default: a default-constructed config builds the no-op telemetry every
    engine carries anyway, so the fast path stays byte-identical.
    """

    enabled: bool = False
    trace_path: str | None = None
    profile: bool = False
    trace_max_bytes: int = 8 * 1024 * 1024
    trace_keep: int = 3
    buffer_events: int = 2048

    def __post_init__(self) -> None:
        _require(
            isinstance(self.enabled, bool),
            f"enabled must be a bool, got {self.enabled!r}",
        )
        _require(
            self.trace_path is None or isinstance(self.trace_path, str),
            f"trace_path must be None or a path string, got {self.trace_path!r}",
        )
        _require(
            isinstance(self.profile, bool),
            f"profile must be a bool, got {self.profile!r}",
        )
        _require(
            isinstance(self.trace_max_bytes, int) and self.trace_max_bytes >= 1024,
            f"trace_max_bytes must be an int >= 1024, got {self.trace_max_bytes!r}",
        )
        _require(
            isinstance(self.trace_keep, int) and self.trace_keep >= 0,
            f"trace_keep must be a non-negative int, got {self.trace_keep!r}",
        )
        _require(
            isinstance(self.buffer_events, int) and self.buffer_events >= 1,
            f"buffer_events must be a positive int, got {self.buffer_events!r}",
        )

    def build(self):
        """A fresh :class:`~repro.telemetry.Telemetry` facade."""
        from repro.telemetry import Telemetry

        return Telemetry(
            enabled=self.enabled or self.trace_path is not None,
            trace_path=self.trace_path,
            profile=self.profile,
            trace_max_bytes=self.trace_max_bytes,
            trace_keep=self.trace_keep,
            buffer_events=self.buffer_events,
        )


@dataclass(frozen=True)
class StorageConfig(_BaseConfig):
    """Parameters of the storage layer (snapshots, bulk ingestion, catalog).

    ``verify_checksum`` makes every snapshot open check the payload CRC32
    (touching every page -- off by default so large snapshots open lazily);
    ``use_mmap`` selects the zero-copy mapped load over a heap copy;
    ``catalog_root`` is where :meth:`DatasetCatalog <repro.storage.DatasetCatalog>`
    keeps named snapshots (None: ``.repro/snapshots`` under the working
    directory).
    """

    verify_checksum: bool = False
    use_mmap: bool = True
    catalog_root: str | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.verify_checksum, bool),
            f"verify_checksum must be a bool, got {self.verify_checksum!r}",
        )
        _require(
            isinstance(self.use_mmap, bool),
            f"use_mmap must be a bool, got {self.use_mmap!r}",
        )
        _require(
            self.catalog_root is None or isinstance(self.catalog_root, str),
            f"catalog_root must be None or a path string, got {self.catalog_root!r}",
        )

    def catalog(self):
        """A :class:`~repro.storage.DatasetCatalog` at this config's root."""
        from repro.storage.catalog import DEFAULT_CATALOG_ROOT, DatasetCatalog

        return DatasetCatalog(self.catalog_root or DEFAULT_CATALOG_ROOT)


@dataclass(frozen=True)
class ServiceConfig(_BaseConfig):
    """Parameters of the ``repro serve`` daemon (:mod:`repro.service`).

    One daemon opens a :class:`~repro.storage.DatasetCatalog` of hot
    snapshots once and serves query/learn/interactive traffic from many
    concurrent clients.  ``snapshots`` preloads named catalog datasets at
    startup (empty: everything registered); ``default_snapshot`` answers
    requests that name none.  ``max_concurrent``/``per_tenant``/
    ``queue_depth`` are the admission-control knobs: past them the server
    sheds with a structured 429-style ``overloaded`` error instead of
    queueing unboundedly.  ``batch_window``/``batch_max`` shape the
    micro-batcher that coalesces compatible single-query requests into one
    :meth:`~repro.engine.QueryEngine.evaluate_many` call.  ``backend`` and
    ``workers`` flow into every per-dataset engine (see
    :class:`EngineConfig`), so a daemon over large snapshots can vectorize
    and shard its kernels.  ``metrics_port``
    serves the registry's Prometheus text over HTTP (``/metrics``);
    ``metrics_path`` additionally writes it to a file on shutdown.

    ``trace_path`` turns on distributed tracing: server-side spans (and
    shard-worker spans from every dataset engine) land in one rotating
    JSONL sink, parented onto client-supplied trace contexts.
    ``slow_log_path`` turns on the slow-query log: queries slower than
    ``slow_query_seconds`` get their profile and plan explanation written
    as structured JSONL (``repro slow`` reads it).  ``min_shard_edges``
    flows into the per-dataset engines' sharding threshold.
    """

    host: str = "127.0.0.1"
    port: int = 0
    catalog_root: str | None = None
    snapshots: tuple[str, ...] = ()
    default_snapshot: str | None = None
    max_concurrent: int = 32
    per_tenant: int = 8
    queue_depth: int = 64
    batch_window: float = 0.002
    batch_max: int = 16
    max_frame_bytes: int = 4 * 1024 * 1024
    request_timeout: float = 120.0
    max_sessions_per_tenant: int = 16
    plan_cache_size: int = 256
    result_cache_size: int = 4096
    backend: str = "auto"
    workers: int = 1
    planner: str = "auto"
    cache_budget_bytes: int | None = None
    share_caches: bool = True
    metrics_port: int | None = None
    metrics_path: str | None = None
    allow_remote_shutdown: bool = False
    trace_path: str | None = None
    slow_log_path: str | None = None
    slow_query_seconds: float = 1.0
    min_shard_edges: int = 50_000

    def __post_init__(self) -> None:
        _require(
            isinstance(self.host, str) and bool(self.host),
            f"host must be a non-empty string, got {self.host!r}",
        )
        _require(
            isinstance(self.port, int) and 0 <= self.port <= 65535,
            f"port must be an int in [0, 65535] (0 = ephemeral), got {self.port!r}",
        )
        _require(
            self.catalog_root is None or isinstance(self.catalog_root, str),
            f"catalog_root must be None or a path string, got {self.catalog_root!r}",
        )
        _require(
            isinstance(self.snapshots, tuple)
            and all(isinstance(name, str) and name for name in self.snapshots),
            f"snapshots must be a tuple of dataset names, got {self.snapshots!r}",
        )
        _require(
            self.default_snapshot is None or isinstance(self.default_snapshot, str),
            f"default_snapshot must be None or a name, got {self.default_snapshot!r}",
        )
        for knob in ("max_concurrent", "per_tenant", "queue_depth", "batch_max"):
            value = getattr(self, knob)
            _require(
                isinstance(value, int) and value >= 1,
                f"{knob} must be a positive int, got {value!r}",
            )
        _require(
            isinstance(self.batch_window, (int, float)) and self.batch_window >= 0,
            f"batch_window must be a non-negative number of seconds, got {self.batch_window!r}",
        )
        _require(
            isinstance(self.max_frame_bytes, int) and self.max_frame_bytes >= 1024,
            f"max_frame_bytes must be an int >= 1024, got {self.max_frame_bytes!r}",
        )
        _require(
            isinstance(self.request_timeout, (int, float)) and self.request_timeout > 0,
            f"request_timeout must be a positive number of seconds, got {self.request_timeout!r}",
        )
        _require(
            isinstance(self.max_sessions_per_tenant, int) and self.max_sessions_per_tenant >= 1,
            f"max_sessions_per_tenant must be a positive int, got {self.max_sessions_per_tenant!r}",
        )
        _require(
            isinstance(self.plan_cache_size, int) and self.plan_cache_size >= 1,
            f"plan_cache_size must be a positive int, got {self.plan_cache_size!r}",
        )
        _require(
            isinstance(self.result_cache_size, int) and self.result_cache_size >= 1,
            f"result_cache_size must be a positive int, got {self.result_cache_size!r}",
        )
        _require(
            self.backend in BACKENDS,
            f"backend must be one of {BACKENDS}, got {self.backend!r}",
        )
        _require(
            isinstance(self.workers, int) and self.workers >= 1,
            f"workers must be a positive int, got {self.workers!r}",
        )
        _require(
            self.planner in PLANNERS,
            f"planner must be one of {PLANNERS}, got {self.planner!r}",
        )
        _require(
            self.cache_budget_bytes is None
            or (isinstance(self.cache_budget_bytes, int) and self.cache_budget_bytes >= 1),
            f"cache_budget_bytes must be None or a positive int, got {self.cache_budget_bytes!r}",
        )
        _require(
            isinstance(self.share_caches, bool),
            f"share_caches must be a bool, got {self.share_caches!r}",
        )
        _require(
            self.metrics_port is None
            or (isinstance(self.metrics_port, int) and 0 <= self.metrics_port <= 65535),
            f"metrics_port must be None or an int in [0, 65535], got {self.metrics_port!r}",
        )
        _require(
            self.metrics_path is None or isinstance(self.metrics_path, str),
            f"metrics_path must be None or a path string, got {self.metrics_path!r}",
        )
        _require(
            isinstance(self.allow_remote_shutdown, bool),
            f"allow_remote_shutdown must be a bool, got {self.allow_remote_shutdown!r}",
        )
        _require(
            self.trace_path is None or isinstance(self.trace_path, str),
            f"trace_path must be None or a path string, got {self.trace_path!r}",
        )
        _require(
            self.slow_log_path is None or isinstance(self.slow_log_path, str),
            f"slow_log_path must be None or a path string, got {self.slow_log_path!r}",
        )
        _require(
            isinstance(self.slow_query_seconds, (int, float)) and self.slow_query_seconds > 0,
            f"slow_query_seconds must be a positive number, got {self.slow_query_seconds!r}",
        )
        _require(
            isinstance(self.min_shard_edges, int) and self.min_shard_edges >= 0,
            f"min_shard_edges must be a non-negative int, got {self.min_shard_edges!r}",
        )

    def catalog(self):
        """A :class:`~repro.storage.DatasetCatalog` at this config's root."""
        from repro.storage.catalog import DEFAULT_CATALOG_ROOT, DatasetCatalog

        return DatasetCatalog(self.catalog_root or DEFAULT_CATALOG_ROOT)

    def engine_config(self) -> EngineConfig:
        """The per-dataset engine sizing this service runs with."""
        return EngineConfig(
            plan_cache_size=self.plan_cache_size,
            result_cache_size=self.result_cache_size,
            backend=self.backend,
            workers=self.workers,
            planner=self.planner,
            cache_budget_bytes=self.cache_budget_bytes,
            min_shard_edges=self.min_shard_edges,
        )


@dataclass(frozen=True)
class LearnerConfig(_BaseConfig):
    """Parameters of one learning run (Algorithm 1, 2 or 3).

    ``dynamic_k`` enables the Section 5.1 procedure (grow ``k`` from ``k``
    up to ``k_max`` while the learner abstains); :meth:`repro.api.Workspace.learn`
    applies it to all three semantics and to the baseline.
    ``generalize=False`` swaps in the disjunction-of-SCPs baseline (monadic
    semantics only).
    """

    k: int = 2
    dynamic_k: bool = True
    k_max: int = 6
    semantics: str = "path"
    generalize: bool = True

    def __post_init__(self) -> None:
        _require(isinstance(self.k, int) and self.k >= 0, f"k must be a non-negative int, got {self.k!r}")
        _require(
            isinstance(self.k_max, int) and self.k_max >= self.k,
            f"need k <= k_max, got k={self.k!r}, k_max={self.k_max!r}",
        )
        _require(
            self.semantics in SEMANTICS,
            f"semantics must be one of {SEMANTICS}, got {self.semantics!r}",
        )
        _require(
            self.generalize or self.semantics == "path",
            "generalize=False (the SCP-disjunction baseline) only exists for the "
            "monadic 'path' semantics",
        )


@dataclass(frozen=True)
class InteractiveConfig(_BaseConfig):
    """Parameters of one interactive session (the Figure 9 loop).

    ``incremental`` selects the kernel-backed session state (batched
    k-informativeness, carried coverage cache, hypothesis reuse -- the
    default) or the legacy per-node recomputation path; the two produce
    identical transcripts, so the flag only exists for parity testing and
    benchmarking.
    """

    strategy: str = "kR"
    k_start: int = 2
    k_max: int = 6
    max_interactions: int | None = None
    neighborhood_radius: int | None = None
    pool_size: int | None = 512
    seed: int = 0
    target_f1: float = 1.0
    incremental: bool = True

    def __post_init__(self) -> None:
        _require(
            isinstance(self.incremental, bool),
            f"incremental must be a bool, got {self.incremental!r}",
        )
        _require(
            self.strategy in STRATEGIES,
            f"strategy must be one of {STRATEGIES}, got {self.strategy!r}",
        )
        _require(
            isinstance(self.k_start, int) and self.k_start >= 0,
            f"k_start must be a non-negative int, got {self.k_start!r}",
        )
        _require(
            isinstance(self.k_max, int) and self.k_max >= self.k_start,
            f"need k_start <= k_max, got k_start={self.k_start!r}, k_max={self.k_max!r}",
        )
        _require(
            self.max_interactions is None or self.max_interactions >= 1,
            f"max_interactions must be None or >= 1, got {self.max_interactions!r}",
        )
        _require(
            self.neighborhood_radius is None or self.neighborhood_radius >= 0,
            f"neighborhood_radius must be None or >= 0, got {self.neighborhood_radius!r}",
        )
        _require(
            self.pool_size is None or self.pool_size >= 1,
            f"pool_size must be None (full scan) or >= 1, got {self.pool_size!r}",
        )
        _require(
            0.0 < self.target_f1 <= 1.0,
            f"target_f1 must be in (0, 1], got {self.target_f1!r}",
        )


@dataclass(frozen=True)
class ExperimentConfig(_BaseConfig):
    """Parameters of one Section 5 experiment run.

    ``goal`` is the goal query's regular expression; the workspace compiles
    it over its graph's alphabet.  ``scenario`` picks the static sweep
    (Figures 11/12) or the interactive loop (Table 2); fields irrelevant to
    the chosen scenario are simply ignored by the driver.  ``name`` labels
    the workload in reports (None: the workspace's own name).
    """

    goal: str = ""
    scenario: str = "static"
    name: str | None = None
    seed: int = 0
    k_start: int = 2
    k_max: int = 4
    # static scenario
    labeled_fractions: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.07, 0.10, 0.15)
    use_generalization: bool = True
    # interactive scenario
    strategy: str = "kR"
    max_interactions: int | None = None
    pool_size: int | None = 512
    target_f1: float = 1.0
    incremental: bool = True

    def __post_init__(self) -> None:
        _require(
            isinstance(self.incremental, bool),
            f"incremental must be a bool, got {self.incremental!r}",
        )
        _require(isinstance(self.goal, str), f"goal must be an expression string, got {self.goal!r}")
        _require(
            self.name is None or isinstance(self.name, str),
            f"name must be None or a string, got {self.name!r}",
        )
        _require(
            self.scenario in SCENARIOS,
            f"scenario must be one of {SCENARIOS}, got {self.scenario!r}",
        )
        _require(
            isinstance(self.k_start, int) and self.k_start >= 0,
            f"k_start must be a non-negative int, got {self.k_start!r}",
        )
        _require(
            isinstance(self.k_max, int) and self.k_max >= self.k_start,
            f"need k_start <= k_max, got k_start={self.k_start!r}, k_max={self.k_max!r}",
        )
        _require(
            bool(self.labeled_fractions),
            "labeled_fractions must contain at least one fraction",
        )
        _require(
            all(0.0 < fraction <= 1.0 for fraction in self.labeled_fractions),
            f"labeled fractions must be in (0, 1], got {self.labeled_fractions!r}",
        )
        _require(
            self.strategy in STRATEGIES,
            f"strategy must be one of {STRATEGIES}, got {self.strategy!r}",
        )
        _require(
            self.max_interactions is None or self.max_interactions >= 1,
            f"max_interactions must be None or >= 1, got {self.max_interactions!r}",
        )
        _require(
            self.pool_size is None or self.pool_size >= 1,
            f"pool_size must be None (full scan) or >= 1, got {self.pool_size!r}",
        )
        _require(
            0.0 < self.target_f1 <= 1.0,
            f"target_f1 must be in (0, 1], got {self.target_f1!r}",
        )
