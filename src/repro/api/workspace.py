"""The :class:`Workspace` facade: one graph, one engine, one API.

A workspace owns a :class:`~repro.graphdb.GraphDB` and a private
:class:`~repro.engine.QueryEngine` and exposes the paper's whole pipeline
behind five methods::

    ws = Workspace(graph)                  # or Workspace.from_file("g.tsv")
    ws.query("(tram+bus)*.cinema")         # evaluate   -> QueryResult
    ws.learn(sample, LearnerConfig(...))   # Algorithm 1/2/3 -> *LearnerResult
    ws.learn_interactive("(a.b)*.c")       # Figure 9 loop -> InteractiveResult
    ws.run_experiment(ExperimentConfig(goal="..."))   # Section 5 drivers
    ws.stats()                             # engine + graph counters

Every outcome satisfies the uniform :class:`~repro.api.result.Result`
protocol, so it serializes to the same JSON envelope the ``python -m repro``
CLI emits.  Because the engine is per-workspace, cache hit rates and kernel
counters in :meth:`Workspace.stats` describe exactly this workspace's
traffic -- nothing silently falls back to the process-wide default engine.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api.config import (
    EngineConfig,
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    StorageConfig,
    TelemetryConfig,
)
from repro.api.result import ExplainResult, QueryResult
from repro.engine.engine import QueryEngine
from repro.errors import ConfigError, QueryError, SerializationError
from repro.evaluation.interactive import InteractiveExperimentResult, run_interactive_experiment
from repro.evaluation.static import StaticExperimentResult, run_static_experiment
from repro.evaluation.workloads import Workload
from repro.graphdb.graph import GraphDB
from repro.graphdb.io import load_graph, save_graph
from repro.interactive.oracle import Oracle, QueryOracle
from repro.interactive.scenario import (
    InteractiveCheckpoint,
    InteractiveResult,
    InteractiveSession,
)
from repro.interactive.strategies import make_strategy
from repro.learning.baselines import learn_scp_disjunction
from repro.learning.binary_learner import BinaryLearnerResult, learn_binary_query
from repro.learning.learner import LearnerResult, dynamic_k_procedure, learn_path_query
from repro.learning.nary_learner import NaryLearnerResult, learn_nary_query
from repro.learning.sample import BinarySample, NarySample, Sample
from repro.queries.binary import BinaryPathQuery
from repro.queries.path_query import PathQuery
from repro.regex.ast import Regex

#: Built-in figure graphs :meth:`Workspace.from_figure` (and the CLI's
#: ``--figure``) can load without a graph file.
FIGURE_GRAPHS = ("geo", "g0")


def _figure_graph(name: str) -> GraphDB:
    from repro.datasets.figures import example_graph_g0, geo_graph

    if name == "geo":
        return geo_graph()
    if name == "g0":
        return example_graph_g0()
    raise ConfigError(f"unknown figure graph {name!r}; expected one of {FIGURE_GRAPHS}")


class Workspace:
    """A graph database plus a private query engine behind one typed API."""

    def __init__(
        self,
        graph: GraphDB | None = None,
        *,
        engine: QueryEngine | None = None,
        engine_config: EngineConfig | None = None,
        telemetry=None,
        telemetry_config: TelemetryConfig | None = None,
        name: str = "workspace",
    ) -> None:
        if engine is not None and engine_config is not None:
            raise ConfigError("pass either a ready engine or an engine_config, not both")
        if telemetry is not None and telemetry_config is not None:
            raise ConfigError("pass either a ready telemetry or a telemetry_config, not both")
        if engine is not None and (telemetry is not None or telemetry_config is not None):
            raise ConfigError(
                "a ready engine already carries its telemetry; pass telemetry only "
                "together with an engine_config (or neither)"
            )
        if telemetry_config is not None:
            telemetry = telemetry_config.build()
        self._graph = graph if graph is not None else GraphDB()
        self._engine = (
            engine
            if engine is not None
            else (engine_config or EngineConfig()).build(telemetry=telemetry)
        )
        self.name = name

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "Workspace":
        """A workspace over a graph file (edge-list ``.tsv`` or ``.json``).

        A binary ``.rgz`` snapshot is routed to :meth:`open_snapshot`.
        """
        if Path(path).suffix == ".rgz":
            return cls.open_snapshot(path, **kwargs)
        workspace = cls(load_graph(path), **kwargs)
        workspace.name = kwargs.get("name", Path(path).stem)
        return workspace

    @classmethod
    def from_figure(cls, name: str, **kwargs) -> "Workspace":
        """A workspace over one of the paper's figure graphs (``geo``, ``g0``)."""
        workspace = cls(_figure_graph(name), **kwargs)
        workspace.name = kwargs.get("name", name)
        return workspace

    @classmethod
    def open_snapshot(
        cls,
        source: str | Path,
        *,
        storage: StorageConfig | None = None,
        **kwargs,
    ) -> "Workspace":
        """A workspace over a binary ``.rgz`` snapshot, opened zero-copy.

        ``source`` is a snapshot file path, or -- when it names no existing
        file and looks like a bare name -- a snapshot registered in the
        configured catalog.  The workspace's graph is a *frozen*
        :class:`~repro.storage.GraphView` whose prebuilt CSR index the
        engine adopts directly, so no edge-by-edge rebuild happens; mutate
        via ``Workspace(ws.graph.thaw())`` when needed.
        """
        from repro.storage.snapshot import open_snapshot
        from repro.storage.view import GraphView

        storage = storage or StorageConfig()
        # Materialize the telemetry before the storage call so the open span
        # lands in the same trace the workspace will keep writing to.
        if kwargs.get("telemetry") is None and kwargs.get("telemetry_config") is not None:
            kwargs = dict(kwargs, telemetry=kwargs["telemetry_config"].build())
            del kwargs["telemetry_config"]
        telemetry = kwargs.get("telemetry")
        path = Path(source)
        # Only a bare name (no suffix, no path separators) falls back to the
        # catalog; a missing *file* path stays a missing-file error.
        looks_like_name = path.suffix == "" and path.name == str(source)
        if path.exists() or not looks_like_name:
            index = open_snapshot(
                path,
                verify=storage.verify_checksum,
                use_mmap=storage.use_mmap,
                telemetry=telemetry,
            )
        else:
            index = storage.catalog().open(
                str(source),
                verify=storage.verify_checksum,
                use_mmap=storage.use_mmap,
                telemetry=telemetry,
            )
        workspace = cls(GraphView(index), **kwargs)
        workspace.name = kwargs.get("name", Path(str(source)).stem)
        return workspace

    def save_snapshot(self, path: str | Path, *, meta: dict | None = None) -> dict:
        """Write the workspace graph (with its CSR index) as a ``.rgz`` snapshot.

        The index is resolved through the workspace engine -- already
        current for a queried workspace, refreshed or built otherwise --
        and serialized together with the node/label tables, so reopening
        via :meth:`open_snapshot` needs no rebuild.  Returns the written
        snapshot's info dict.
        """
        from repro.storage.snapshot import write_snapshot

        payload = dict(meta or {})
        payload.setdefault("workspace", self.name)
        # A declared alphabet constrains which queries parse; persist it so
        # the reopened workspace answers exactly the same query set.
        if getattr(self._graph, "has_fixed_alphabet", False):
            payload.setdefault("alphabet", sorted(self._graph.alphabet))
        index = self._engine.index_for(self._graph)
        return write_snapshot(index, path, meta=payload, telemetry=self.telemetry)

    # -- accessors ------------------------------------------------------------

    @property
    def graph(self) -> GraphDB:
        """The workspace's graph database."""
        return self._graph

    @property
    def engine(self) -> QueryEngine:
        """The workspace-private query engine (isolated caches and stats)."""
        return self._engine

    @property
    def telemetry(self):
        """The engine's :class:`~repro.telemetry.Telemetry` facade."""
        return self._engine.telemetry

    def __repr__(self) -> str:
        return (
            f"Workspace({self.name!r}, nodes={self._graph.node_count()}, "
            f"edges={self._graph.edge_count()})"
        )

    # -- the five public operations -------------------------------------------

    def query(
        self, expr: str | Regex | PathQuery | BinaryPathQuery, *, semantics: str = "path"
    ) -> QueryResult:
        """Evaluate a path query on the workspace graph.

        ``expr`` is a regular-expression string or AST (compiled over the
        graph's alphabet) or an already-built query object.  ``semantics`` selects
        monadic (``"path"``, the paper's main class) or classical binary
        RPQ evaluation.
        """
        if semantics not in ("path", "binary"):
            raise ConfigError(f"semantics must be 'path' or 'binary', got {semantics!r}")
        if not isinstance(expr, (str, Regex, PathQuery, BinaryPathQuery)):
            raise QueryError(
                "expected an expression string (or Regex AST, PathQuery, "
                f"BinaryPathQuery), got {type(expr).__name__}"
            )
        started = time.perf_counter()
        # Locally traced runs mint a root TraceContext here (no-op when one
        # is already attached -- e.g. under the serving daemon -- or when
        # tracing is off), so their records carry a trace id and join
        # ``repro trace --id`` exactly like remote queries.
        with self.telemetry.ensure_context(), self.telemetry.span(
            "workspace.query", semantics=semantics
        ) as span:
            if semantics == "binary":
                if isinstance(expr, BinaryPathQuery):
                    query = expr
                else:
                    source = expr.expression if isinstance(expr, PathQuery) else expr
                    query = BinaryPathQuery.parse(source, self._graph.alphabet)
                selected: frozenset = query.evaluate(self._graph, engine=self._engine)
            else:
                if isinstance(expr, PathQuery):
                    query = expr
                elif isinstance(expr, BinaryPathQuery):
                    query = PathQuery.parse(expr.expression, self._graph.alphabet)
                else:
                    query = PathQuery.parse(expr, self._graph.alphabet)
                selected = query.evaluate(self._graph, engine=self._engine)
            span.set(expression=query.expression, selected=len(selected))
        return QueryResult(
            query=query,
            semantics=semantics,
            selected=selected,
            elapsed=time.perf_counter() - started,
            profile=self._engine.take_profile(),
        )

    def explain(
        self, expr: str | Regex | PathQuery | BinaryPathQuery, *, semantics: str = "path"
    ) -> ExplainResult:
        """Plan a query without running it (``EXPLAIN`` for path queries).

        Accepts everything :meth:`query` accepts and returns an
        :class:`~repro.api.ExplainResult`: the planner's rewrite report
        (parity-pinned against the unrewritten automaton), the compiled
        plan's fingerprint and shape, the cost model's per-strategy
        estimates, the kernel the engine would dispatch, and the result
        cache's disposition.  No kernel runs; the plan cache is warmed
        exactly as evaluation would warm it.
        """
        if semantics not in ("path", "binary"):
            raise ConfigError(f"semantics must be 'path' or 'binary', got {semantics!r}")
        if not isinstance(expr, (str, Regex, PathQuery, BinaryPathQuery)):
            raise QueryError(
                "expected an expression string (or Regex AST, PathQuery, "
                f"BinaryPathQuery), got {type(expr).__name__}"
            )
        started = time.perf_counter()
        with self.telemetry.span("workspace.explain", semantics=semantics) as span:
            if semantics == "binary":
                if isinstance(expr, BinaryPathQuery):
                    query: PathQuery | BinaryPathQuery = expr
                else:
                    source = expr.expression if isinstance(expr, PathQuery) else expr
                    query = BinaryPathQuery.parse(source, self._graph.alphabet)
            elif isinstance(expr, PathQuery):
                query = expr
            elif isinstance(expr, BinaryPathQuery):
                query = PathQuery.parse(expr.expression, self._graph.alphabet)
            else:
                query = PathQuery.parse(expr, self._graph.alphabet)
            report = self._engine.explain(self._graph, query, semantics=semantics)
            span.set(
                expression=query.expression,
                strategy=report["chosen"]["strategy"],
                rewrites=len(report["planner"].get("rewrites", [])),
            )
        return ExplainResult(
            query=query,
            semantics=semantics,
            plan=report["plan"],
            planner=report["planner"],
            estimates=tuple(report["estimates"]),
            pair_estimates=tuple(report["pair_estimates"]),
            chosen=report["chosen"],
            cache=report["cache"],
            graph=report["graph"],
            elapsed=time.perf_counter() - started,
        )

    def learn(
        self,
        sample: Sample | BinarySample | NarySample,
        config: LearnerConfig | None = None,
    ) -> LearnerResult | BinaryLearnerResult | NaryLearnerResult:
        """Learn a query from a fixed sample (Algorithm 1, 2 or 3).

        The algorithm is picked from ``config.semantics``, which must agree
        with the sample's type (a plain :class:`Sample` for ``"path"``, a
        :class:`BinarySample` for ``"binary"``, a :class:`NarySample` for
        ``"nary"``).  With the default config the learner runs with the
        paper's dynamic-``k`` procedure (grow ``k`` up to ``k_max`` while it
        abstains); that applies to all three semantics.
        """
        config = config or LearnerConfig(semantics=self._infer_semantics(sample))
        expected = self._infer_semantics(sample)
        if config.semantics != expected:
            raise ConfigError(
                f"config.semantics={config.semantics!r} does not match the sample type "
                f"({type(sample).__name__} implies {expected!r})"
            )
        if config.semantics == "binary":
            return self._learn_dynamic(learn_binary_query, sample, config)
        if config.semantics == "nary":
            return self._learn_dynamic(learn_nary_query, sample, config)
        if not config.generalize:
            return self._learn_dynamic(learn_scp_disjunction, sample, config)
        return self._learn_dynamic(learn_path_query, sample, config)

    def _learn_dynamic(self, learn, sample, config: LearnerConfig):
        """Run a fixed-``k`` learner, under dynamic ``k`` when configured."""
        if not config.dynamic_k:
            return learn(self._graph, sample, k=config.k, engine=self._engine)
        return dynamic_k_procedure(
            learn, self._graph, sample, k_start=config.k, k_max=config.k_max, engine=self._engine
        )

    def learn_interactive(
        self,
        target: str | PathQuery | Oracle,
        config: InteractiveConfig | None = None,
        *,
        resume_from: "InteractiveCheckpoint | dict | str | Path | None" = None,
        checkpoint_to: str | Path | None = None,
    ) -> InteractiveResult:
        """Run the Figure 9 interactive loop against a goal query or oracle.

        ``target`` is the goal query (an expression string or
        :class:`PathQuery`) labeled by a simulated perfect user, or any
        :class:`~repro.interactive.Oracle` for custom labeling behaviour.

        ``resume_from`` continues a paused session from an
        :class:`~repro.interactive.InteractiveCheckpoint` (the object, its
        ``to_dict`` payload, or a path to a JSON file of it); the snapshot's
        strategy, RNG position, sample and grown ``k`` win over the matching
        ``config`` fields, so the resumed run continues exactly where an
        uninterrupted one would be.  The run *budget* stays with ``config``
        -- resuming is how a paused session gets a fresh budget:
        ``config.max_interactions`` buys that many *new* interactions on top
        of the checkpointed ones (``target_f1`` and ``neighborhood_radius``
        also come from ``config``).  ``checkpoint_to`` writes the session's final checkpoint
        JSON to the given path, resumable later even when the run stopped on
        ``max_interactions``.
        """
        config = config or InteractiveConfig()
        session = self.interactive_session(target, config, resume_from=resume_from)
        result = session.run()
        if checkpoint_to is not None:
            payload = session.checkpoint().to_dict()
            Path(checkpoint_to).write_text(json.dumps(payload, indent=2))
        return result

    def interactive_session(
        self,
        target: str | PathQuery | Oracle,
        config: InteractiveConfig | None = None,
        *,
        resume_from: "InteractiveCheckpoint | dict | str | Path | None" = None,
    ) -> InteractiveSession:
        """Build (or resume) an interactive session without running it.

        This is :meth:`learn_interactive` minus the ``run()``: callers that
        need the session object itself -- to drive rounds manually, or to
        take a checkpoint and stash it somewhere other than a file (the
        query service keeps them in a per-tenant table) -- construct here
        and call :meth:`~repro.interactive.InteractiveSession.run` /
        ``checkpoint()`` themselves.  Budget semantics under ``resume_from``
        are identical to :meth:`learn_interactive`.
        """
        config = config or InteractiveConfig()
        if isinstance(target, Oracle):
            oracle = target
        else:
            goal = (
                target
                if isinstance(target, PathQuery)
                else PathQuery.parse(target, self._graph.alphabet)
            )
            oracle = QueryOracle(
                goal, satisfaction_threshold=config.target_f1, engine=self._engine
            )
        if resume_from is not None:
            checkpoint = self._load_checkpoint(resume_from)
            session = InteractiveSession.resume(
                checkpoint,
                self._graph,
                oracle,
                engine=self._engine,
                incremental=config.incremental,
            )
            # The checkpoint owns the session's past; the config owns the
            # budget of the run being started now.  The session-level budget
            # counts *total* interactions (that is what makes a resumed run
            # replay an uninterrupted one), so the fresh per-run budget is
            # offset by the interactions already on the log -- otherwise
            # resuming with the same config would halt without progress.
            session.max_interactions = (
                None
                if config.max_interactions is None
                else config.max_interactions + len(session.interactions)
            )
            session.neighborhood_radius = config.neighborhood_radius
        else:
            session = InteractiveSession(
                self._graph,
                oracle,
                make_strategy(config.strategy, seed=config.seed, pool_size=config.pool_size),
                k_start=config.k_start,
                k_max=config.k_max,
                max_interactions=config.max_interactions,
                neighborhood_radius=config.neighborhood_radius,
                engine=self._engine,
                incremental=config.incremental,
            )
        return session

    @staticmethod
    def _load_checkpoint(
        source: "InteractiveCheckpoint | dict | str | Path",
    ) -> InteractiveCheckpoint:
        if isinstance(source, InteractiveCheckpoint):
            return source
        if isinstance(source, dict):
            return InteractiveCheckpoint.from_dict(source)
        if isinstance(source, (str, Path)):
            try:
                payload = json.loads(Path(source).read_text())
            except json.JSONDecodeError as error:
                raise SerializationError(
                    f"checkpoint file {source} is not valid JSON: {error}"
                ) from error
            return InteractiveCheckpoint.from_dict(payload)
        raise ConfigError(
            "resume_from must be an InteractiveCheckpoint, its to_dict payload "
            f"or a path to its JSON file, got {type(source).__name__}"
        )

    def run_experiment(
        self, config: ExperimentConfig
    ) -> StaticExperimentResult | InteractiveExperimentResult:
        """Run one Section 5 experiment on the workspace graph.

        The goal query comes from ``config.goal``; ``config.scenario`` picks
        the static sweep (Figures 11/12) or the interactive loop (Table 2).
        The whole run -- sampling, learning, scoring -- uses the workspace
        engine, so :meth:`stats` afterwards describes exactly this
        experiment's work.
        """
        if not isinstance(config, ExperimentConfig):
            raise ConfigError(
                f"run_experiment needs an ExperimentConfig, got {type(config).__name__}"
            )
        if not config.goal:
            raise ConfigError("ExperimentConfig.goal must name the goal query expression")
        goal = PathQuery.parse(config.goal, self._graph.alphabet)
        workload = Workload(
            name=config.name if config.name is not None else self.name,
            query=goal,
            graph=self._graph,
        )
        if config.scenario == "interactive":
            return run_interactive_experiment(workload, config=config, engine=self._engine)
        return run_static_experiment(workload, config=config, engine=self._engine)

    def stats(self) -> dict:
        """Engine counters (cache hit rates, kernel work) plus graph shape."""
        snapshot = dict(self._engine.stats_snapshot())
        snapshot.update(
            graph_nodes=self._graph.node_count(),
            graph_edges=self._graph.edge_count(),
            graph_labels=len(self._graph.labels()),
            backend=self._engine.backend,
            workers=self._engine.workers,
        )
        return snapshot

    def metrics_text(self) -> str:
        """All registry metrics in the Prometheus text exposition format."""
        return self.telemetry.registry.render_prometheus()

    # -- housekeeping ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Save the workspace graph (format chosen from the file extension)."""
        save_graph(self._graph, path)

    def clear_caches(self) -> None:
        """Drop the workspace engine's cached plans, results and indexes."""
        self._engine.clear_caches()

    @staticmethod
    def _infer_semantics(sample: Sample | BinarySample | NarySample) -> str:
        if isinstance(sample, NarySample):
            return "nary"
        if isinstance(sample, BinarySample):
            return "binary"
        if isinstance(sample, Sample):
            return "path"
        raise ConfigError(
            f"expected a Sample, BinarySample or NarySample, got {type(sample).__name__}"
        )
