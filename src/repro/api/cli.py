"""The ``python -m repro`` command line (also installed as ``repro``).

Drives the :class:`~repro.api.Workspace` facade without writing Python.
Every subcommand prints one JSON *result envelope* to stdout::

    {
      "ok": true,            # did the command execute? (exit code 0 iff true)
      "command": "learn",    # which subcommand ran
      "elapsed": 0.0123,     # wall-clock seconds of the whole command
      "result": { ... },     # the uniform Result.to_dict() payload
      "engine_stats": { ... }  # the workspace engine's counters
    }

``ok`` tracks command execution, not the outcome's quality: a learner that
legitimately abstains still yields ``ok: true`` (with ``result.ok: false``)
and exit code 0, so scripts can tell a valid abstention from a failure.

Subcommands
-----------
``learn``        learn a query from ``--positives``/``--negatives`` labels;
``query``        evaluate a regular path query on the graph;
``explain``      plan a query without running it (rewrites, cost estimates,
                 chosen kernel, cache disposition);
``experiment``   run a Section 5 experiment (static sweep or interactive loop);
``interactive``  run one interactive session against a goal query, with
                 optional ``--checkpoint FILE`` resume/save;
``bench``        repeat query evaluations to exercise the engine's caches;
``ingest``       bulk-load an edge file into a binary ``.rgz`` snapshot
                 (and/or register it in a catalog);
``info``         describe a snapshot's header/sections or list a catalog;
``stats``        report engine/cache/storage economics (optionally after
                 driving ``--expr`` traffic, optionally as Prometheus text);
``trace``        tail or summarize a JSONL span trace file, or reconstruct
                 one distributed trace (``--id``) across several files;
``slow``         tail or summarize a daemon's slow-query log
                 (``serve --slow-log``);
``serve``        run the long-lived query-service daemon over a snapshot
                 catalog (:mod:`repro.service`), optionally with a span
                 trace (``--trace``) and a slow-query log (``--slow-log``).

``query`` and ``stats`` also accept ``--remote HOST:PORT`` instead of a
graph source, sending the request to a running ``repro serve`` daemon
(with ``--tenant`` and ``--dataset`` selecting the tenant id and the
server-side snapshot).  A remote ``query --trace FILE`` records the
client side of a distributed trace whose context propagates to the
daemon's (and its shard workers') spans; ``stats --remote --tenants``
reports the daemon's per-tenant accounting table.

Graphs come from ``--graph FILE`` (edge-list ``.tsv`` or ``.json``, see
:mod:`repro.graphdb.io`), ``--figure {geo,g0}`` (the paper's figure
graphs) or ``--snapshot FILE`` (a binary ``.rgz`` snapshot opened
zero-copy through the storage layer).  Every graph-backed subcommand
accepts ``--trace FILE`` (write a structured JSONL span trace) and
``--profile`` (attach per-query execution profiles to results).  Failures
print ``{"ok": false, "error": {...}}`` and exit 1.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api.config import (
    PLANNERS,
    STRATEGIES,
    EngineConfig,
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    TelemetryConfig,
)
from repro.api.result import Result
from repro.api.workspace import FIGURE_GRAPHS, Workspace
from repro.errors import ConfigError, ReproError
from repro.learning.sample import BinarySample, Sample


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Learning path queries on graph databases (Bonifati-Ciucanu-Lemay, "
            "EDBT 2015): learn, evaluate and benchmark regular path queries "
            "from the command line."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_source(sub: argparse.ArgumentParser, *, remote: bool = False) -> None:
        sub.add_argument(
            "--indent",
            type=int,
            default=2,
            help="JSON indentation of the envelope (default 2; 0 for compact)",
        )
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--graph", metavar="FILE", help="graph file (.tsv edge list or .json)"
        )
        source.add_argument(
            "--figure",
            choices=FIGURE_GRAPHS,
            help="one of the paper's figure graphs instead of a file",
        )
        source.add_argument(
            "--snapshot",
            metavar="FILE",
            help="binary .rgz snapshot (opened zero-copy, no graph rebuild)",
        )
        if remote:
            source.add_argument(
                "--remote",
                metavar="HOST:PORT",
                help="send the request to a running 'repro serve' daemon",
            )
            sub.add_argument(
                "--tenant",
                default="cli",
                help="tenant id for --remote requests (default 'cli')",
            )
            sub.add_argument(
                "--dataset",
                default=None,
                help="with --remote: the server-side snapshot name to query",
            )
        sub.add_argument(
            "--plan-cache-size", type=int, default=256, help="engine plan cache capacity"
        )
        sub.add_argument(
            "--result-cache-size",
            type=int,
            default=1024,
            help="engine result cache capacity",
        )
        sub.add_argument(
            "--backend",
            choices=("auto", "python", "numpy"),
            default="auto",
            help="kernel backend (auto: numpy when installed, else python)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="shard whole-graph kernels across this many worker processes "
            "(snapshot-backed graphs only; 1 = in-process)",
        )
        sub.add_argument(
            "--min-shard-edges",
            type=int,
            default=50_000,
            metavar="N",
            help="smallest graph (in edges) worth sharding across --workers "
            "(default 50000; 0 = always shard)",
        )
        sub.add_argument(
            "--planner",
            choices=PLANNERS,
            default="auto",
            help="cost-based query planner (auto: rewrite automata and pick "
            "kernels by estimated cost; off: verbatim compilation)",
        )
        sub.add_argument(
            "--cache-budget",
            type=int,
            default=None,
            metavar="BYTES",
            help="byte budget shared by the engine caches (default: entry-count "
            "capacity only)",
        )
        sub.add_argument(
            "--trace",
            metavar="FILE",
            default=None,
            help="write a structured JSONL span trace of the run to FILE",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="attach per-query execution profiles to results",
        )

    learn = subparsers.add_parser(
        "learn", help="learn a query from labeled nodes (Algorithm 1/2)"
    )
    add_graph_source(learn)
    learn.add_argument(
        "--positives",
        required=True,
        help="comma-separated positive nodes (binary semantics: origin:end pairs)",
    )
    learn.add_argument(
        "--negatives",
        default="",
        help="comma-separated negative nodes (binary semantics: origin:end pairs)",
    )
    learn.add_argument(
        "--semantics", choices=("path", "binary"), default="path", help="query semantics"
    )
    learn.add_argument("--k", type=int, default=2, help="path-length bound k")
    learn.add_argument(
        "--k-max", type=int, default=6, help="upper bound for the dynamic-k procedure"
    )
    learn.add_argument(
        "--fixed-k",
        action="store_true",
        help="disable the dynamic-k procedure (use exactly --k)",
    )
    learn.add_argument(
        "--no-generalize",
        action="store_true",
        help="use the disjunction-of-SCPs baseline instead of generalization",
    )

    query = subparsers.add_parser("query", help="evaluate a regular path query")
    add_graph_source(query, remote=True)
    query.add_argument("--expr", required=True, help="the regular path query expression")
    query.add_argument(
        "--semantics",
        choices=("path", "binary"),
        default="path",
        help="monadic node selection (path) or classical pair selection (binary)",
    )

    explain = subparsers.add_parser(
        "explain",
        help="plan a query without running it (rewrites, costs, chosen kernel)",
    )
    add_graph_source(explain)
    explain.add_argument("--expr", required=True, help="the regular path query expression")
    explain.add_argument(
        "--semantics",
        choices=("path", "binary"),
        default="path",
        help="monadic node selection (path) or classical pair selection (binary)",
    )

    experiment = subparsers.add_parser(
        "experiment", help="run a Section 5 experiment on the graph"
    )
    add_graph_source(experiment)
    experiment.add_argument("--goal", required=True, help="the goal query expression")
    experiment.add_argument(
        "--scenario",
        choices=("static", "interactive"),
        default="static",
        help="static sweep (Figures 11/12) or interactive loop (Table 2)",
    )
    experiment.add_argument("--seed", type=int, default=0, help="random seed")
    experiment.add_argument("--k-start", type=int, default=2, help="initial k")
    experiment.add_argument("--k-max", type=int, default=4, help="maximal k")
    experiment.add_argument(
        "--fractions",
        default=None,
        help="static scenario: comma-separated labeled fractions (e.g. 0.05,0.1)",
    )
    experiment.add_argument(
        "--no-generalize",
        action="store_true",
        help="static scenario: use the disjunction-of-SCPs baseline",
    )
    experiment.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="kR",
        help="interactive scenario: node-selection strategy",
    )
    experiment.add_argument(
        "--max-interactions",
        type=int,
        default=None,
        help="interactive scenario: interaction budget (default: 10%% of nodes)",
    )
    experiment.add_argument(
        "--target-f1",
        type=float,
        default=1.0,
        help="interactive scenario: halt threshold (1.0 = paper's strongest)",
    )

    interactive = subparsers.add_parser(
        "interactive",
        help="run the Figure 9 interactive loop against a goal query",
    )
    add_graph_source(interactive)
    interactive.add_argument("--goal", required=True, help="the goal query expression")
    interactive.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="kR",
        help="node-selection strategy (default kR)",
    )
    interactive.add_argument("--seed", type=int, default=0, help="random seed")
    interactive.add_argument("--k-start", type=int, default=2, help="initial k")
    interactive.add_argument("--k-max", type=int, default=6, help="maximal k")
    interactive.add_argument(
        "--max-interactions",
        type=int,
        default=None,
        help="interaction budget (default: unbounded, halt on goal/exhaustion)",
    )
    interactive.add_argument(
        "--pool-size",
        type=int,
        default=512,
        help="candidate pool per round (0 = full scan; default 512)",
    )
    interactive.add_argument(
        "--target-f1",
        type=float,
        default=1.0,
        help="halt threshold (1.0 = paper's strongest condition)",
    )
    interactive.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help=(
            "session checkpoint JSON: resumed from if the file exists, "
            "written (updated) when the run stops"
        ),
    )
    interactive.add_argument(
        "--legacy-loop",
        action="store_true",
        help="disable the incremental kernel-backed session state (parity/debugging)",
    )

    bench = subparsers.add_parser(
        "bench", help="repeat query evaluations to exercise the engine caches"
    )
    add_graph_source(bench)
    bench.add_argument(
        "--expr",
        action="append",
        required=True,
        help="query expression to evaluate (repeatable)",
    )
    bench.add_argument(
        "--repeat", type=int, default=100, help="evaluations per expression (default 100)"
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="bulk-load an edge file into a binary .rgz snapshot (storage layer)",
    )
    ingest.add_argument("--indent", type=int, default=2, help="JSON indentation of the envelope")
    ingest.add_argument(
        "--input",
        required=True,
        metavar="FILE",
        help="edge file (.tsv/.jsonl/.csv, '.gz' decompressed on the fly)",
    )
    ingest.add_argument(
        "--format",
        choices=("auto", "edge-list", "jsonl", "csv"),
        default="auto",
        help="input format (default: guessed from the suffix)",
    )
    ingest.add_argument(
        "--output", metavar="FILE", default=None, help="snapshot file to write (.rgz)"
    )
    ingest.add_argument(
        "--catalog", metavar="DIR", default=None, help="register the snapshot here"
    )
    ingest.add_argument(
        "--name", default=None, help="catalog name (default: the input file's stem)"
    )
    ingest.add_argument(
        "--on-error",
        choices=("raise", "skip"),
        default="raise",
        help="malformed-line policy (default raise)",
    )
    ingest.add_argument(
        "--max-errors",
        type=int,
        default=None,
        help="with --on-error skip: abort after this many malformed lines",
    )

    info = subparsers.add_parser(
        "info",
        help="inspect a .rgz snapshot header or list a snapshot catalog",
    )
    info.add_argument("--indent", type=int, default=2, help="JSON indentation of the envelope")
    info_source = info.add_mutually_exclusive_group(required=True)
    info_source.add_argument("--snapshot", metavar="FILE", help="snapshot file to describe")
    info_source.add_argument("--catalog", metavar="DIR", help="catalog directory to describe")
    info.add_argument("--name", default=None, help="with --catalog: describe one named snapshot")

    stats = subparsers.add_parser(
        "stats",
        help="report engine/cache/storage economics for a graph workspace",
    )
    add_graph_source(stats, remote=True)
    stats.add_argument(
        "--expr",
        action="append",
        default=None,
        help="query traffic to drive before reporting (repeatable)",
    )
    stats.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="evaluations per --expr expression (default 1)",
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="include the Prometheus text exposition in the envelope",
    )
    stats.add_argument(
        "--trace-file",
        metavar="FILE",
        default=None,
        help="also summarize span timings and cache economics from this JSONL trace",
    )
    stats.add_argument(
        "--tenants",
        action="store_true",
        help="with --remote: report the daemon's per-tenant accounting table",
    )

    trace = subparsers.add_parser(
        "trace",
        help="tail, summarize or reconstruct a structured JSONL span trace",
    )
    trace.add_argument("--indent", type=int, default=2, help="JSON indentation of the envelope")
    trace.add_argument(
        "--file",
        required=True,
        action="append",
        metavar="FILE",
        help="a JSONL trace file (repeatable: e.g. the client's and the "
        "server's files of one distributed trace)",
    )
    trace.add_argument(
        "--tail",
        type=int,
        default=None,
        help="show the last N trace records instead of the summary",
    )
    trace.add_argument(
        "--id",
        dest="trace_id",
        metavar="TRACE_ID",
        default=None,
        help="reconstruct one distributed trace as a span tree (records "
        "tagged with this trace id across every --file)",
    )

    slow = subparsers.add_parser(
        "slow",
        help="tail or summarize a daemon's slow-query log (serve --slow-log)",
    )
    slow.add_argument("--indent", type=int, default=2, help="JSON indentation of the envelope")
    slow.add_argument("--file", required=True, metavar="FILE", help="the slow-query JSONL log")
    slow.add_argument(
        "--tail",
        type=int,
        default=None,
        help="show the last N slow-query entries instead of the summary",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the query-service daemon over a catalog of snapshots",
    )
    serve.add_argument("--indent", type=int, default=2, help="JSON indentation of the envelope")
    serve.add_argument(
        "--catalog", metavar="DIR", default=None, help="snapshot catalog directory"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default loopback)")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (default 0 = ephemeral, printed on start)"
    )
    serve.add_argument(
        "--snapshots",
        default=None,
        help="comma-separated catalog names to preload (default: all registered)",
    )
    serve.add_argument(
        "--default-snapshot",
        default=None,
        help="snapshot answering requests that name none (default: first preloaded)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=32, help="global in-flight request cap"
    )
    serve.add_argument(
        "--per-tenant", type=int, default=8, help="per-tenant in-flight request cap"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64, help="batch queue bound (shed past it)"
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch coalescing window in milliseconds",
    )
    serve.add_argument(
        "--batch-max", type=int, default=16, help="maximal queries per micro-batch"
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default="auto",
        help="kernel backend of every dataset engine",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard worker processes per dataset engine (1 = in-process)",
    )
    serve.add_argument(
        "--min-shard-edges",
        type=int,
        default=50_000,
        metavar="N",
        help="smallest graph (in edges) worth sharding across --workers "
        "(default 50000; 0 = always shard)",
    )
    serve.add_argument(
        "--planner",
        choices=PLANNERS,
        default="auto",
        help="cost-based query planner of every dataset engine",
    )
    serve.add_argument(
        "--cache-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget of every dataset engine's caches",
    )
    serve.add_argument(
        "--no-share-caches",
        action="store_true",
        help="give each dataset workspace private caches instead of sharing "
        "them by snapshot content identity",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus text on this HTTP port (GET /metrics)",
    )
    serve.add_argument(
        "--metrics-file",
        metavar="FILE",
        default=None,
        help="write the final Prometheus text here on shutdown",
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write the daemon's structured JSONL span trace to FILE "
        "(request spans parent onto client-supplied trace contexts)",
    )
    serve.add_argument(
        "--slow-log",
        metavar="FILE",
        default=None,
        help="append queries slower than --slow-query-ms to FILE as JSONL "
        "(full profile + plan explanation; 'repro slow' reads it)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=1000.0,
        metavar="MS",
        help="slow-query latency threshold in milliseconds (default 1000)",
    )
    serve.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="let clients stop the server via the shutdown op (tests/CI)",
    )

    return parser


def _make_workspace(args: argparse.Namespace) -> Workspace:
    engine_config = EngineConfig(
        plan_cache_size=args.plan_cache_size,
        result_cache_size=args.result_cache_size,
        backend=getattr(args, "backend", "auto"),
        workers=getattr(args, "workers", 1),
        min_shard_edges=getattr(args, "min_shard_edges", 50_000),
        planner=getattr(args, "planner", "auto"),
        cache_budget_bytes=getattr(args, "cache_budget", None),
    )
    kwargs: dict = {"engine_config": engine_config}
    if args.trace is not None or args.profile:
        kwargs["telemetry_config"] = TelemetryConfig(
            enabled=args.trace is not None,
            trace_path=args.trace,
            profile=args.profile,
        )
    if getattr(args, "snapshot", None) is not None:
        return Workspace.open_snapshot(args.snapshot, **kwargs)
    if args.graph is not None:
        return Workspace.from_file(args.graph, **kwargs)
    return Workspace.from_figure(args.figure, **kwargs)


def _split_csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_examples(text: str, semantics: str) -> list:
    items = _split_csv(text)
    if semantics != "binary":
        return items
    pairs = []
    for item in items:
        origin, separator, end = item.partition(":")
        if not separator or not origin or not end:
            raise ConfigError(
                f"binary examples must be origin:end pairs, got {item!r}"
            )
        pairs.append((origin, end))
    return pairs


def _cmd_learn(args: argparse.Namespace, workspace: Workspace) -> Result:
    positives = _parse_examples(args.positives, args.semantics)
    negatives = _parse_examples(args.negatives, args.semantics)
    if args.semantics == "binary":
        sample: Sample | BinarySample = BinarySample(positives, negatives)
    else:
        sample = Sample(positives, negatives)
    config = LearnerConfig(
        k=args.k,
        k_max=max(args.k, args.k_max),
        dynamic_k=not args.fixed_k,
        semantics=args.semantics,
        generalize=not args.no_generalize,
    )
    return workspace.learn(sample, config)


def _cmd_query(args: argparse.Namespace, workspace: Workspace) -> Result:
    return workspace.query(args.expr, semantics=args.semantics)


def _cmd_explain(args: argparse.Namespace, workspace: Workspace) -> Result:
    return workspace.explain(args.expr, semantics=args.semantics)


def _cmd_experiment(args: argparse.Namespace, workspace: Workspace) -> Result:
    kwargs = dict(
        goal=args.goal,
        scenario=args.scenario,
        seed=args.seed,
        k_start=args.k_start,
        k_max=args.k_max,
        use_generalization=not args.no_generalize,
        strategy=args.strategy,
        max_interactions=args.max_interactions,
        target_f1=args.target_f1,
    )
    if args.fractions is not None:
        try:
            kwargs["labeled_fractions"] = tuple(
                float(fraction) for fraction in _split_csv(args.fractions)
            )
        except ValueError as error:
            raise ConfigError(f"malformed --fractions value: {error}") from error
    return workspace.run_experiment(ExperimentConfig(**kwargs))


def _cmd_interactive(args: argparse.Namespace, workspace: Workspace) -> Result:
    import os

    config = InteractiveConfig(
        strategy=args.strategy,
        seed=args.seed,
        k_start=args.k_start,
        k_max=max(args.k_start, args.k_max),
        max_interactions=args.max_interactions,
        pool_size=args.pool_size if args.pool_size > 0 else None,
        target_f1=args.target_f1,
        incremental=not args.legacy_loop,
    )
    resume_from = (
        args.checkpoint
        if args.checkpoint is not None and os.path.exists(args.checkpoint)
        else None
    )
    return workspace.learn_interactive(
        args.goal,
        config,
        resume_from=resume_from,
        checkpoint_to=args.checkpoint,
    )


def _cmd_bench(args: argparse.Namespace, workspace: Workspace) -> dict:
    if args.repeat < 1:
        raise ConfigError("--repeat must be at least 1")
    runs = []
    for expression in args.expr:
        first = workspace.query(expression)
        # Reuse the compiled query object so the warm loop measures the
        # engine's plan/result caches, not regex re-compilation.
        compiled = first.query
        warm_runs = args.repeat - 1
        started = time.perf_counter()
        for _ in range(warm_runs):
            workspace.query(compiled)
        warm_elapsed = time.perf_counter() - started
        runs.append(
            {
                "expression": expression,
                "selected": first.count,
                "repeat": args.repeat,
                "cold_seconds": first.elapsed,
                # null when no warm evaluation happened (--repeat 1).
                "warm_seconds_per_eval": (
                    warm_elapsed / warm_runs if warm_runs else None
                ),
            }
        )
    return {"type": "BenchReport", "ok": True, "runs": runs}


def _cmd_ingest(args: argparse.Namespace) -> dict:
    from repro.storage.catalog import DatasetCatalog
    from repro.storage.ingest import ingest_file

    if args.output is None and args.catalog is None:
        raise ConfigError("ingest needs --output FILE and/or --catalog DIR")
    ingestion = ingest_file(
        args.input,
        format=args.format,
        on_error=args.on_error,
        max_errors=args.max_errors,
    )
    payload: dict = {
        "type": "IngestReport",
        "ok": True,
        "report": ingestion.report.as_dict(),
    }
    meta = {"source_file": str(args.input)}
    if args.output is not None:
        payload["snapshot"] = ingestion.save(args.output, meta=meta)
    if args.catalog is not None:
        catalog = DatasetCatalog(args.catalog)
        name = args.name or Path(args.input).name.split(".")[0]
        if args.output is not None:
            catalog.register(name, args.output)
        else:
            catalog.save(name, ingestion.index, meta=meta)
        payload["catalog"] = {"root": str(catalog.root), "name": name}
    return payload


def _cmd_stats(args: argparse.Namespace, workspace: Workspace) -> dict:
    from repro.telemetry.export import read_trace, summarize_trace

    if args.tenants:
        raise ConfigError(
            "--tenants reports a daemon's accounting table; it needs --remote"
        )
    if args.repeat < 1:
        raise ConfigError("--repeat must be at least 1")
    for expression in args.expr or ():
        # Reuse the compiled query object so repeats exercise the engine's
        # plan/result caches rather than regex re-compilation.
        compiled = workspace.query(expression).query
        for _ in range(args.repeat - 1):
            workspace.query(compiled)
    # Flush before reading --trace-file: it may be this very run's --trace.
    workspace.telemetry.flush()
    payload: dict = {
        "type": "StatsReport",
        "ok": True,
        "stats": workspace.stats(),
        "metrics": workspace.telemetry.registry.snapshot(),
    }
    if args.prometheus:
        payload["prometheus"] = workspace.metrics_text()
    if args.trace_file is not None:
        payload["trace"] = summarize_trace(read_trace(args.trace_file))
    return payload


def _cmd_trace(args: argparse.Namespace) -> dict:
    from repro.telemetry.export import (
        build_trace_tree,
        read_trace,
        summarize_trace,
        tail_trace,
    )

    files = [str(name) for name in args.file]
    if args.trace_id is not None:
        # One distributed trace may span several files (the client's, the
        # server's); chain them all before reconstructing the span tree.
        records: list[dict] = []
        for name in files:
            records.extend(read_trace(name))
        return {
            "type": "TraceReport",
            "ok": True,
            "files": files,
            "tree": build_trace_tree(records, args.trace_id),
        }
    if args.tail is not None:
        if args.tail < 1:
            raise ConfigError("--tail must be at least 1")
        if len(files) > 1:
            raise ConfigError("--tail reads a single --file")
        return {
            "type": "TraceReport",
            "ok": True,
            "file": files[0],
            "records": tail_trace(files[0], args.tail),
        }
    records = []
    for name in files:
        records.extend(read_trace(name))
    payload: dict = {"type": "TraceReport", "ok": True}
    if len(files) == 1:
        payload["file"] = files[0]
    else:
        payload["files"] = files
    payload["summary"] = summarize_trace(records)
    return payload


def _cmd_slow(args: argparse.Namespace) -> dict:
    from repro.telemetry import summarize_slow
    from repro.telemetry.export import read_trace, tail_trace

    if args.tail is not None:
        if args.tail < 1:
            raise ConfigError("--tail must be at least 1")
        return {
            "type": "SlowQueryReport",
            "ok": True,
            "file": str(args.file),
            "entries": tail_trace(args.file, args.tail),
        }
    return {
        "type": "SlowQueryReport",
        "ok": True,
        "file": str(args.file),
        "summary": summarize_slow(read_trace(args.file)),
    }


def _remote_client(args: argparse.Namespace, telemetry=None):
    from repro.service.client import ServiceClient, parse_address

    host, port = parse_address(args.remote)
    return ServiceClient(host, port, tenant=args.tenant, telemetry=telemetry)


def _cmd_query_remote(args: argparse.Namespace) -> dict:
    # --trace on a remote query records the *client side* of the distributed
    # trace: the minted context travels on the wire, the daemon's spans
    # parent onto it, and 'repro trace --id' joins the two files back up.
    telemetry = (
        TelemetryConfig(trace_path=args.trace).build()
        if getattr(args, "trace", None) is not None
        else None
    )
    try:
        with _remote_client(args, telemetry=telemetry) as client:
            envelope = client.request(
                "query",
                {
                    "expr": args.expr,
                    "semantics": args.semantics,
                    **({"snapshot": args.dataset} if args.dataset else {}),
                },
            )
    finally:
        if telemetry is not None:
            telemetry.close()
    payload = envelope["result"]
    payload["served_by"] = args.remote
    if envelope.get("trace") is not None:
        payload["trace"] = envelope["trace"]
    return payload


def _cmd_stats_remote(args: argparse.Namespace) -> dict:
    with _remote_client(args) as client:
        if args.repeat < 1:
            raise ConfigError("--repeat must be at least 1")
        for expression in args.expr or ():
            for _ in range(args.repeat):
                client.query(expression, snapshot=args.dataset)
        payload: dict = dict(client.stats())
        if args.tenants:
            # Surface the accounting table on its own key so scripts can
            # read it without digging through the server block.
            payload["tenants"] = payload.get("server", {}).get("tenants", {})
        if args.prometheus:
            payload["prometheus"] = client.metrics_text()
    payload["served_by"] = args.remote
    return payload


def _cmd_serve(args: argparse.Namespace) -> dict:
    from repro.api.config import ServiceConfig
    from repro.service.server import QueryService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        catalog_root=args.catalog,
        snapshots=tuple(_split_csv(args.snapshots)) if args.snapshots else (),
        default_snapshot=args.default_snapshot,
        max_concurrent=args.max_concurrent,
        per_tenant=args.per_tenant,
        queue_depth=args.queue_depth,
        batch_window=args.batch_window_ms / 1000.0,
        batch_max=args.batch_max,
        backend=args.backend,
        workers=args.workers,
        min_shard_edges=args.min_shard_edges,
        planner=args.planner,
        cache_budget_bytes=args.cache_budget,
        share_caches=not args.no_share_caches,
        metrics_port=args.metrics_port,
        metrics_path=args.metrics_file,
        allow_remote_shutdown=args.allow_remote_shutdown,
        trace_path=args.trace,
        slow_log_path=args.slow_log,
        slow_query_seconds=args.slow_query_ms / 1000.0,
    )
    service = QueryService(config)
    host, port = service.start()
    # One machine-readable ready line, flushed immediately, so wrappers
    # (tests, CI smoke, process supervisors) can discover the bound port.
    ready = {
        "ok": True,
        "command": "serve",
        "ready": {
            "host": host,
            "port": port,
            "metrics": service.metrics_address,
            "snapshots": service.dataset_names(),
            "default": service.default_snapshot,
        },
    }
    print(json.dumps(ready), flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return {
        "type": "ServeReport",
        "ok": True,
        "address": [host, port],
        "server": service.server_stats(),
    }


def _cmd_info(args: argparse.Namespace) -> dict:
    from repro.storage.catalog import DatasetCatalog
    from repro.storage.snapshot import snapshot_info

    if args.snapshot is not None:
        return {"type": "SnapshotInfo", "ok": True, "snapshot": snapshot_info(args.snapshot)}
    catalog = DatasetCatalog(args.catalog)
    if args.name is not None:
        return {"type": "SnapshotInfo", "ok": True, "snapshot": catalog.info(args.name)}
    return {
        "type": "CatalogInfo",
        "ok": True,
        "catalog": {"root": str(catalog.root), "snapshots": catalog.entries()},
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    indent = args.indent if args.indent and args.indent > 0 else None
    started = time.perf_counter()
    try:
        # The storage/trace/service commands work on files, catalogs or a
        # remote daemon, not on a local workspace.
        if args.command == "ingest":
            outcome = _cmd_ingest(args)
        elif args.command == "info":
            outcome = _cmd_info(args)
        elif args.command == "trace":
            outcome = _cmd_trace(args)
        elif args.command == "slow":
            outcome = _cmd_slow(args)
        elif args.command == "serve":
            outcome = _cmd_serve(args)
        elif args.command == "query" and getattr(args, "remote", None):
            outcome = _cmd_query_remote(args)
        elif args.command == "stats" and getattr(args, "remote", None):
            outcome = _cmd_stats_remote(args)
        else:
            workspace = _make_workspace(args)
            handler = {
                "learn": _cmd_learn,
                "query": _cmd_query,
                "explain": _cmd_explain,
                "experiment": _cmd_experiment,
                "interactive": _cmd_interactive,
                "bench": _cmd_bench,
                "stats": _cmd_stats,
            }[args.command]
            outcome = handler(args, workspace)
            # Push any buffered span records out so a --trace file is complete
            # when the envelope prints.
            workspace.telemetry.flush()
        payload = outcome if isinstance(outcome, dict) else outcome.to_dict()
        envelope = {
            "ok": True,
            "command": args.command,
            "elapsed": time.perf_counter() - started,
            "result": payload,
        }
        if args.command not in ("ingest", "info", "trace", "slow", "serve") and not getattr(
            args, "remote", None
        ):
            envelope["engine_stats"] = workspace.stats()
    except (ReproError, OSError) as error:
        envelope = {
            "ok": False,
            "command": args.command,
            "elapsed": time.perf_counter() - started,
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    print(json.dumps(envelope, indent=indent, sort_keys=False))
    return 0 if envelope["ok"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
