"""The uniform result protocol of the public API.

Every outcome object the library produces -- learning runs, interactive
sessions, experiment sweeps, and the workspace's own query evaluations --
satisfies one small structural contract, :class:`Result`:

* ``ok``       -- did the run produce a usable outcome?
* ``query``    -- the learned/evaluated query (or its expression), if any;
* ``elapsed``  -- wall-clock seconds spent producing the result;
* ``to_dict``  -- a JSON-safe snapshot (with a ``"type"`` tag) that
  round-trips through the matching ``from_dict`` classmethod.

:func:`result_from_dict` / :func:`result_from_json` are the inverse: they
dispatch on the ``"type"`` tag and rebuild the concrete result object, which
is what the ``python -m repro`` CLI envelope and any service layer on top of
the workspace rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.errors import SerializationError
from repro.evaluation.interactive import InteractiveExperimentResult
from repro.evaluation.static import StaticExperimentResult
from repro.interactive.scenario import InteractiveCheckpoint, InteractiveResult
from repro.learning.binary_learner import BinaryLearnerResult
from repro.learning.learner import LearnerResult
from repro.learning.nary_learner import NaryLearnerResult
from repro.queries.binary import BinaryPathQuery
from repro.queries.path_query import PathQuery


@runtime_checkable
class Result(Protocol):
    """Structural protocol satisfied by every result object of the library."""

    @property
    def ok(self) -> bool:
        """Whether the run produced a usable outcome."""

    @property
    def query(self) -> Any:
        """The learned or evaluated query (or its expression), if any."""

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds spent producing this result."""

    def to_dict(self) -> dict:
        """A JSON-safe snapshot carrying a ``"type"`` tag."""


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one :meth:`repro.api.Workspace.query` evaluation.

    ``selected`` holds the selected nodes (monadic semantics) or node pairs
    (binary semantics).  Implements the :class:`Result` protocol.

    ``profile`` is the per-query execution profile captured when the owning
    workspace's telemetry runs in profiling mode (compile/index/walk splits,
    cache attribution, per-depth frontier sizes); None otherwise.
    """

    query: PathQuery | BinaryPathQuery
    semantics: str
    selected: frozenset
    elapsed: float = 0.0
    profile: dict | None = None

    @property
    def ok(self) -> bool:
        """Result protocol: evaluation always produces a node set."""
        return True

    @property
    def count(self) -> int:
        """The number of selected nodes (or pairs)."""
        return len(self.selected)

    def nodes(self) -> list:
        """The selected nodes/pairs in deterministic order (for display)."""
        return sorted(self.selected, key=repr)

    def __repr__(self) -> str:
        return (
            f"QueryResult({self.query.expression!r}, semantics={self.semantics!r}, "
            f"count={self.count})"
        )

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        if self.semantics == "binary":
            selected: list = sorted(([o, e] for o, e in self.selected), key=repr)
        else:
            selected = sorted(self.selected, key=repr)
        payload = {
            "type": "QueryResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "semantics": self.semantics,
            "query": self.query.to_dict(),
            "count": self.count,
            "selected": selected,
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            semantics = payload.get("semantics", "path")
            if semantics == "binary":
                query: PathQuery | BinaryPathQuery = BinaryPathQuery.from_dict(
                    payload["query"]
                )
                selected: frozenset = frozenset(
                    (pair[0], pair[1]) for pair in payload.get("selected", [])
                )
            else:
                query = PathQuery.from_dict(payload["query"])
                selected = frozenset(payload.get("selected", []))
            return cls(
                query=query,
                semantics=semantics,
                selected=selected,
                elapsed=payload.get("elapsed", 0.0),
                profile=payload.get("profile"),
            )
        except (KeyError, TypeError, IndexError) as error:
            raise SerializationError(f"malformed QueryResult payload: {error}") from error


@dataclass(frozen=True)
class ExplainResult:
    """The outcome of one :meth:`repro.api.Workspace.explain` call.

    A query *plan*, not an answer: which rewrites the planner applied (and
    their parity status), the compiled plan's fingerprint and shape, the
    cost model's per-strategy estimates, the kernel/backend the engine
    would dispatch, and the result cache's disposition for this exact
    (plan, graph version) key.  ``selected`` never appears -- explaining
    runs no kernel.  Implements the :class:`Result` protocol.
    """

    query: PathQuery | BinaryPathQuery
    semantics: str
    plan: dict
    planner: dict
    estimates: tuple
    pair_estimates: tuple
    chosen: dict
    cache: dict
    graph: dict
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """Result protocol: planning always produces a plan."""
        return True

    @property
    def rewrites(self) -> tuple:
        """The rewrite pass names the planner applied, in order."""
        return tuple(self.planner.get("rewrites", ()))

    @property
    def strategy(self) -> str:
        """The whole-graph strategy the engine would dispatch."""
        return self.chosen.get("strategy", "python")

    def __repr__(self) -> str:
        return (
            f"ExplainResult({self.query.expression!r}, semantics={self.semantics!r}, "
            f"strategy={self.strategy!r}, rewrites={list(self.rewrites)!r})"
        )

    # -- serialization (Result protocol) -------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot; round-trips through :meth:`from_dict`."""
        return {
            "type": "ExplainResult",
            "ok": self.ok,
            "elapsed": self.elapsed,
            "semantics": self.semantics,
            "query": self.query.to_dict(),
            "plan": self.plan,
            "planner": self.planner,
            "estimates": list(self.estimates),
            "pair_estimates": list(self.pair_estimates),
            "chosen": self.chosen,
            "cache": self.cache,
            "graph": self.graph,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExplainResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            semantics = payload.get("semantics", "path")
            if semantics == "binary":
                query: PathQuery | BinaryPathQuery = BinaryPathQuery.from_dict(
                    payload["query"]
                )
            else:
                query = PathQuery.from_dict(payload["query"])
            return cls(
                query=query,
                semantics=semantics,
                plan=dict(payload["plan"]),
                planner=dict(payload["planner"]),
                estimates=tuple(payload.get("estimates", ())),
                pair_estimates=tuple(payload.get("pair_estimates", ())),
                chosen=dict(payload["chosen"]),
                cache=dict(payload.get("cache", {})),
                graph=dict(payload.get("graph", {})),
                elapsed=payload.get("elapsed", 0.0),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"malformed ExplainResult payload: {error}"
            ) from error


#: ``"type"`` tag -> concrete result class, the dispatch table of
#: :func:`result_from_dict`.
RESULT_TYPES: dict[str, type] = {
    "QueryResult": QueryResult,
    "ExplainResult": ExplainResult,
    "LearnerResult": LearnerResult,
    "BinaryLearnerResult": BinaryLearnerResult,
    "NaryLearnerResult": NaryLearnerResult,
    "InteractiveResult": InteractiveResult,
    "InteractiveCheckpoint": InteractiveCheckpoint,
    "StaticExperimentResult": StaticExperimentResult,
    "InteractiveExperimentResult": InteractiveExperimentResult,
}


def result_from_dict(payload: dict) -> Result:
    """Rebuild any library result from its ``to_dict`` snapshot.

    Dispatches on the payload's ``"type"`` tag; raises
    :class:`~repro.errors.SerializationError` on unknown or missing tags.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"result payload must be a dict, got {type(payload).__name__}"
        )
    tag = payload.get("type")
    result_cls = RESULT_TYPES.get(tag)
    if result_cls is None:
        known = sorted(RESULT_TYPES)
        raise SerializationError(f"unknown result type tag {tag!r}; expected one of {known}")
    return result_cls.from_dict(payload)


def result_to_json(result: Result, *, indent: int | None = None) -> str:
    """Serialize any library result to its JSON document."""
    return json.dumps(result.to_dict(), indent=indent, sort_keys=False)


def result_from_json(text: str) -> Result:
    """Inverse of :func:`result_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid result JSON: {error}") from error
    return result_from_dict(payload)


__all__ = [
    "Result",
    "QueryResult",
    "ExplainResult",
    "RESULT_TYPES",
    "result_from_dict",
    "result_from_json",
    "result_to_json",
]
