"""Interactive learning (Section 4): the system proposes nodes, the user labels them.

A simulated user wants the query ``(a.b)*.c`` on the paper's example graph
G0 and, separately, a synthetic goal on a 1,000-node scale-free graph.  The
interactive loop starts from an empty sample, proposes informative nodes
with the kS strategy, and stops when the learned query selects exactly the
same nodes as the goal.

Run with:  python examples/interactive_session.py
"""

from __future__ import annotations

from repro import PathQuery, QueryOracle, make_strategy, run_interactive_learning
from repro.datasets import example_graph_g0, scale_free_graph
from repro.evaluation import f1_score


def run_on(graph, goal: PathQuery, *, strategy_name: str, max_interactions: int) -> None:
    print(f"Goal query: {goal.expression}")
    print(f"Graph: {graph} -- goal selects {len(goal.evaluate(graph))} nodes")
    oracle = QueryOracle(goal)
    strategy = make_strategy(strategy_name, seed=1)
    outcome = run_interactive_learning(
        graph, oracle, strategy, max_interactions=max_interactions
    )
    print(f"Strategy {strategy_name}: {outcome.interaction_count} labels "
          f"({100 * outcome.labels_fraction(graph):.2f}% of the nodes), "
          f"halted by {outcome.halted_by!r}")
    for interaction in outcome.interactions[:6]:
        print(
            f"  #{interaction.index + 1}: node {interaction.node!r} labeled "
            f"{interaction.label}  ->  learned: {interaction.learned_expression}"
        )
    if outcome.interaction_count > 6:
        print(f"  ... {outcome.interaction_count - 6} more interactions ...")
    learned = outcome.query
    print("Final learned query:", None if learned is None else learned.expression)
    print(f"F1 against the goal: {f1_score(learned, goal, graph):.3f}")
    print()


def main() -> None:
    print("=== Interactive learning on the paper's example graph G0 ===")
    g0 = example_graph_g0()
    run_on(
        g0,
        PathQuery.parse("(a.b)*.c", g0.alphabet),
        strategy_name="kS",
        max_interactions=15,
    )

    print("=== Interactive learning on a 1,000-node synthetic graph ===")
    graph = scale_free_graph(1000, alphabet_size=10, seed=5)
    goal = PathQuery.parse("(l00+l02).(l01+l03).(l00+l01)*", graph.alphabet)
    run_on(graph, goal, strategy_name="kS", max_interactions=150)


if __name__ == "__main__":
    main()
