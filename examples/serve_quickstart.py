"""The serving layer: one daemon, hot snapshots, many concurrent clients.

Starts a :class:`~repro.service.QueryService` in-process on an ephemeral
port (exactly what ``repro serve`` wraps), then drives it from two
concurrent tenants: both fire path queries at the shared ``geo`` snapshot
-- answered from one shared engine, so the second tenant's repeats hit the
result cache the first tenant warmed -- and each runs its own named
interactive learning session, resumed across requests and invisible to the
other tenant.

Run with:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading

from repro.api.config import ServiceConfig
from repro.service import QueryService, ServiceClient

GOAL = "(tram+bus)*.cinema"
EXPRESSIONS = ("tram", "bus", GOAL, "tram.tram")


def tenant_worker(host: str, port: int, tenant: str, report: dict) -> None:
    with ServiceClient(host, port, tenant=tenant) as client:
        counts = {}
        for expression in EXPRESSIONS * 2:  # the second lap is all cache hits
            counts[expression] = client.query(expression).count
        # A named interactive session: two requests, resumed in between.
        first, info = client.interactive(
            GOAL, session="quickstart", config={"max_interactions": 2, "pool_size": 32}
        )
        second, info = client.interactive(
            GOAL, session="quickstart", config={"max_interactions": 2, "pool_size": 32}
        )
        client.release_session("quickstart")
        report[tenant] = {
            "counts": counts,
            "resumed": info["resumed"],
            "interactions": info["interactions"],
            "learned": None if second.query is None else second.query.expression,
        }


def main() -> None:
    with tempfile.TemporaryDirectory() as catalog_root:
        config = ServiceConfig(
            catalog_root=catalog_root, snapshots=("geo",), default_snapshot="geo"
        )
        with QueryService(config) as service:
            host, port = service.address
            print(f"serving 'geo' on {host}:{port}")

            report: dict = {}
            threads = [
                threading.Thread(target=tenant_worker, args=(host, port, tenant, report))
                for tenant in ("alice", "bob")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            for tenant in sorted(report):
                entry = report[tenant]
                print(f"tenant {tenant}: counts {entry['counts']}")
                print(
                    f"tenant {tenant}: session resumed={entry['resumed']} "
                    f"after {entry['interactions']} interactions, "
                    f"learned {entry['learned']!r}"
                )

            stats = service.server_stats()
            print(
                f"server: {stats['requests']} requests, {stats['errors']} errors, "
                f"ops {stats['ops']}"
            )
            print("metrics excerpt:")
            for line in service.metrics_text().splitlines():
                if line.startswith(("service_requests_total", "service_batches_total")):
                    print(f"  {line}")
    print("daemon shut down cleanly")


if __name__ == "__main__":
    main()
