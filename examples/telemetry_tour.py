"""The observability layer end to end: traces, profiles, metrics, exports.

A workspace is opened with telemetry on (JSONL trace sink + per-query
profiling), queries and an interactive learning session run through it, and
then everything telemetry produced is inspected: the per-query
:class:`~repro.telemetry.QueryProfile`, the in-memory span ring, the JSONL
trace file (summarized with the same helpers ``python -m repro trace``
uses), the unified metrics registry, and its Prometheus text exposition.
The same data is available from the shell as ``python -m repro query
--trace run.jsonl --profile`` / ``repro trace`` / ``repro stats``.

The tour then goes distributed: an in-process query daemon is started with
tracing and a slow-query log, a *traced* client sends a query through it,
and the client's and the server's trace files are joined into one
cross-process span tree (what ``repro trace --id`` renders), the slow log
is summarized (``repro slow``), and the per-tenant accounting table is
read back (``repro stats --remote --tenants``).

Run with:  PYTHONPATH=src python examples/telemetry_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import InteractiveConfig, TelemetryConfig, Workspace
from repro.api.config import ServiceConfig
from repro.service import QueryService, ServiceClient
from repro.storage.catalog import DatasetCatalog
from repro.telemetry import (
    Telemetry,
    build_trace_tree,
    read_trace,
    summarize_slow,
    summarize_trace,
    tail_trace,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
    trace_path = workdir / "run.jsonl"

    # 1. One switch turns the whole layer on.  ``enabled`` alone keeps spans
    #    in the in-memory ring; ``trace_path`` adds the rotating JSONL sink;
    #    ``profile`` attaches a QueryProfile to every QueryResult.  The
    #    default TelemetryConfig() is all-off and costs nothing.
    ws = Workspace.from_figure(
        "geo",
        telemetry_config=TelemetryConfig(trace_path=str(trace_path), profile=True),
    )
    print(f"workspace: {ws}")
    print(f"telemetry: {ws.telemetry}")
    print()

    # 2. A cold query pays compile + index build + walk; the profile says
    #    exactly how much of each, and how wide the automaton frontier was
    #    at every BFS depth.
    cold = ws.query("(tram+bus)*.cinema")
    profile = cold.profile
    print("cold query profile:")
    print(f"  cache:         {profile['cache']!r} (plan {profile['plan_cache']!r})")
    print(f"  compile:       {profile['compile_seconds'] * 1e6:8.1f} us")
    print(f"  index:         {profile['index_seconds'] * 1e6:8.1f} us")
    print(f"  walk:          {profile['walk_seconds'] * 1e6:8.1f} us")
    print(f"  states/edges:  {profile['states_expanded']} / {profile['edges_scanned']}")
    print(f"  frontier:      {profile['depth_sizes']}")

    # 3. The warm repeat is a result-cache hit: no walk at all.
    warm = ws.query("(tram+bus)*.cinema")
    assert warm.selected == cold.selected
    print(f"warm repeat:     cache {warm.profile['cache']!r}, "
          f"walk {warm.profile['walk_seconds'] * 1e6:.1f} us")
    print()

    # 4. Heavier traffic: an interactive session.  Every round emits an
    #    ``interactive.round`` span and each interaction carries its own
    #    oracle/learn timing split.
    outcome = ws.learn_interactive(
        "(tram+bus)*.cinema", InteractiveConfig(max_interactions=20, seed=3)
    )
    print(f"interactive: {outcome.interaction_count} interactions, "
          f"halted by {outcome.halted_by!r}")
    slowest = max(outcome.interactions, key=lambda i: i.profile["learn_seconds"])
    print(f"  slowest learn step: {slowest.profile['learn_seconds'] * 1e3:.2f} ms "
          f"(oracle {slowest.profile['oracle_seconds'] * 1e6:.1f} us)")
    print()

    # 5. Spans nest: workspace.query -> engine.evaluate -> engine.index_build.
    #    The ring buffer keeps the most recent records in memory ...
    print("recent spans (in-memory ring):")
    for record in ws.telemetry.events()[:6]:
        indent = "  " * record["depth"]
        print(f"  {indent}{record['name']:28s} {record['seconds'] * 1e6:9.1f} us")
    print()

    # 6. ... and the JSONL sink has all of them.  flush() pushes buffered
    #    records to disk; read/tail/summarize are what `repro trace` runs.
    ws.telemetry.flush()
    summary = summarize_trace(read_trace(trace_path))
    print(f"trace file: {trace_path.name}, {summary['events']} spans, "
          f"{summary['total_seconds'] * 1e3:.1f} ms inside instrumented code")
    widest = sorted(
        summary["spans"].items(), key=lambda kv: kv[1]["total_seconds"], reverse=True
    )
    for name, agg in widest[:5]:
        print(f"  {name:28s} x{agg['count']:<5d} total {agg['total_seconds'] * 1e3:8.2f} ms")
    print(f"  result cache: {summary['cache']}")
    print(f"  last span: {tail_trace(trace_path, n=1)[0]['name']}")
    print()

    # 7. The metrics registry is the single source of numeric truth -- the
    #    EngineStats counters *are* registry counters, so ws.stats() and the
    #    Prometheus exposition can never disagree.
    stats = ws.stats()
    print(f"engine stats: {stats['evaluations']} evaluations, "
          f"result-cache hit rate {stats['result_cache_hit_rate']:.2f}")
    print()
    print("prometheus exposition (excerpt):")
    for line in ws.metrics_text().splitlines():
        if line.startswith(("engine_evaluations", "kernel_", "interactive_reused")):
            print(f"  {line}")

    ws.telemetry.close()
    print()

    # 8. Distributed: the daemon traces server-side, the client traces its
    #    side, and the TraceContext rides the NDJSON frame so both files
    #    describe ONE trace.  A nanosecond slow threshold logs every query
    #    so the slow log has something to show.
    catalog_root = workdir / "catalog"
    DatasetCatalog(catalog_root).ensure("geo")
    server_trace = workdir / "server-trace.jsonl"
    client_trace = workdir / "client-trace.jsonl"
    slow_log = workdir / "slow.jsonl"
    config = ServiceConfig(
        catalog_root=str(catalog_root),
        snapshots=("geo",),
        default_snapshot="geo",
        trace_path=str(server_trace),
        slow_log_path=str(slow_log),
        slow_query_seconds=1e-9,
    )
    with QueryService(config) as service:
        host, port = service.address
        telemetry = Telemetry(trace_path=client_trace)
        with ServiceClient(host, port, tenant="acme", telemetry=telemetry) as client:
            envelope = client.request("query", {"expr": "(tram+bus)*.cinema"})
        telemetry.close()
        trace_id = envelope["trace"]["trace_id"]
        print(f"distributed trace id: {trace_id} (echoed in the envelope)")

        # Per-tenant accounting, as `repro stats --remote --tenants` shows it.
        with ServiceClient(host, port, tenant="acme") as client:
            tenants = client.stats()["server"]["tenants"]
        acme = tenants["acme"]
        print(f"tenant 'acme' account: {acme['queries']} queries, "
              f"{acme['kernel_units']} kernel units, "
              f"{acme['wall_milliseconds']} ms wall")

    # The daemon's sink closes on shutdown; join both files into one tree.
    records = list(read_trace(client_trace)) + list(read_trace(server_trace))
    tree = build_trace_tree(records, trace_id)
    print(f"one trace, {tree['spans']} spans across two processes:")

    def show(node, depth=0):
        print(f"  {'  ' * depth}{node['name']:24s} {node['seconds'] * 1e6:9.1f} us")
        for child in node["children"]:
            show(child, depth + 1)

    for root in tree["roots"]:
        show(root)

    # The slow log carries the trace id plus the full profile and plan
    # explanation -- `repro slow --file slow.jsonl` prints this digest.
    slow = summarize_slow(read_trace(slow_log))
    print(f"slow log: {slow['entries']} entries, "
          f"slowest {slow['slowest']['expr']!r} "
          f"({slow['slowest']['elapsed'] * 1e3:.2f} ms, "
          f"trace {slow['slowest']['trace']})")


if __name__ == "__main__":
    main()
