"""Quickstart: learn the paper's running-example query from a handful of labels.

The graph is the geographical database of Figure 1 (neighborhoods connected
by tram/bus, with cinema and restaurant facilities).  The "user" wants the
query ``(tram+bus)*.cinema`` -- the neighborhoods from which a cinema is
reachable by public transportation -- but only ever provides positive and
negative node labels.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PathQuery, Sample, learn_with_dynamic_k
from repro.datasets import geo_graph
from repro.evaluation import score_query


def main() -> None:
    graph = geo_graph()
    goal = PathQuery.parse("(tram+bus)*.cinema", graph.alphabet)

    print("Graph:", graph)
    print("Goal query (hidden from the learner):", goal.expression)
    print("Nodes selected by the goal:", sorted(goal.evaluate(graph)))
    print()

    # The labels from the paper's introduction: N2 and N6 are wanted, N5 is not.
    sample = Sample(positives={"N2", "N6"}, negatives={"N5"})
    result = learn_with_dynamic_k(graph, sample)
    print("After the introduction's three labels (+N2, +N6, -N5):")
    print("  learned query:", result.query.expression)
    print("  selected nodes:", sorted(result.query.evaluate(graph)))
    scores = score_query(result.query, goal, graph)
    print(f"  F1 against the goal: {scores.f1:.2f}")
    print()

    # A richer sample pins the goal down exactly.
    richer = Sample(
        positives={"N1", "N2", "N4", "N6"},
        negatives={"N3", "N5", "C1", "R1"},
    )
    result = learn_with_dynamic_k(graph, richer)
    print("After labeling four positives and four negatives:")
    print("  learned query:", result.query.expression)
    print("  selected nodes:", sorted(result.query.evaluate(graph)))
    scores = score_query(result.query, goal, graph)
    print(f"  F1 against the goal: {scores.f1:.2f}")
    print()
    print(
        "The learned query selects exactly the same neighborhoods as the goal"
        " -- the user never wrote a regular expression."
    )


if __name__ == "__main__":
    main()
