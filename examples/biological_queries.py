"""The biological workload: Table 1 queries on the AliBaba-like graph.

Builds the synthetic stand-in for the AliBaba protein-interaction graph,
reports the selectivity of the six Table 1 queries, and learns one of them
(bio3 = C.E) both from a fixed random sample and interactively.

Run with:  python examples/biological_queries.py
"""

from __future__ import annotations

import random

from repro import QueryOracle, make_strategy, run_interactive_learning
from repro.evaluation import f1_score, render_table1
from repro.evaluation.static import draw_sample
from repro.evaluation.workloads import biological_workloads
from repro.learning import learn_with_dynamic_k
from repro.queries import selectivity_report


def main() -> None:
    # A reduced-scale AliBaba-like graph keeps the example fast; pass
    # node_count=3000, edge_count=8000 for the paper-scale graph.
    workloads = biological_workloads(node_count=1000, edge_count=2700, seed=7)
    graph = workloads[0].graph
    print("AliBaba-like graph:", graph)
    print()

    report = selectivity_report({w.name: w.query for w in workloads}, graph)
    print(render_table1(report))
    print()

    bio3 = next(w for w in workloads if w.name == "bio3")
    print(f"Learning {bio3.name} ({bio3.description}) from a fixed random sample:")
    rng = random.Random(1)
    sample = draw_sample(graph, bio3.query, labeled_fraction=0.05, rng=rng)
    result = learn_with_dynamic_k(graph, sample, k_max=4)
    learned = result.best_effort_query
    print(f"  {len(sample)} labels -> F1 = {f1_score(learned, bio3.query, graph):.3f}")
    print(f"  learned: {learned.expression[:100]}")
    print()

    print(f"Learning {bio3.name} interactively (kS strategy):")
    outcome = run_interactive_learning(
        graph,
        QueryOracle(bio3.query, satisfaction_threshold=0.95),
        make_strategy("kS", seed=2),
        max_interactions=150,
    )
    print(
        f"  {outcome.interaction_count} labels "
        f"({100 * outcome.labels_fraction(graph):.2f}% of nodes) -> "
        f"F1 = {f1_score(outcome.query, bio3.query, graph):.3f} "
        f"(halted by {outcome.halted_by!r})"
    )


if __name__ == "__main__":
    main()
