"""Mining scientific workflows by example (the introduction's second use case).

A biologist wants every workflow run whose steps match
``ProteinPurification . ProteinSeparation* . MassSpectrometry`` but does not
know regular expressions.  She labels a few run entry points as positive or
negative; the learner recovers the pattern.

Run with:  python examples/workflow_mining.py
"""

from __future__ import annotations

from repro import PathQuery, Sample, learn_with_dynamic_k
from repro.datasets import workflow_graph
from repro.datasets.workflows import workflow_goal_query
from repro.evaluation import score_query


def main() -> None:
    graph = workflow_graph(matching_runs=6, other_runs=14, seed=3)
    goal = PathQuery.parse(workflow_goal_query(), graph.alphabet)

    print("Workflow graph:", graph)
    print("Hidden pattern:", goal.expression)

    run_starts = sorted(node for node in graph.nodes if str(node).endswith("_s0"))
    matching = [node for node in run_starts if goal.selects(graph, node)]
    non_matching = [node for node in run_starts if not goal.selects(graph, node)]
    print(f"{len(matching)} of {len(run_starts)} workflow runs match the pattern")
    print()

    # The biologist labels three matching runs and four non-matching ones.
    sample = Sample(positives=set(matching[:3]), negatives=set(non_matching[:4]))
    print("Labels provided:")
    for node in sorted(sample.positives):
        print(f"  + {node}")
    for node in sorted(sample.negatives):
        print(f"  - {node}")

    result = learn_with_dynamic_k(graph, sample, k_max=6)
    print()
    print("Learned pattern:", result.query.expression)

    scores = score_query(result.query, goal, graph)
    learned_runs = {
        node for node in result.query.evaluate(graph) if str(node).endswith("_s0")
    }
    print(f"Runs retrieved by the learned pattern: {len(learned_runs)}")
    print(f"F1 against the hidden pattern (all graph nodes): {scores.f1:.2f}")
    missing = set(matching) - learned_runs
    spurious = learned_runs - set(matching)
    print("Missed matching runs:", sorted(missing) or "none")
    print("Spuriously retrieved runs:", sorted(spurious) or "none")


if __name__ == "__main__":
    main()
