"""Bulk ingestion and binary snapshots: the storage layer end to end.

A synthetic edge-list file is streamed into an interned CSR index
(:func:`repro.storage.ingest_edge_list` -- O(E), no Python edge tuples),
saved as a ``.rgz`` binary snapshot, registered in a
:class:`repro.DatasetCatalog`, and reopened zero-copy through
``Workspace.open_snapshot`` -- where the query engine adopts the mapped
index without rebuilding anything.  The same flow is available from the
shell as ``python -m repro ingest`` / ``repro info``.

Run with:  PYTHONPATH=src python examples/bulk_ingest.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import DatasetCatalog, StorageConfig, Workspace
from repro.datasets import scale_free_graph
from repro.graphdb.io import graph_to_edge_list
from repro.storage import ingest_edge_list, snapshot_info


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-storage-"))

    # 0. Fake an "external dataset": a 5k-node scale-free graph as a TSV
    #    edge list (in real use this file comes from somewhere else).
    graph = scale_free_graph(5_000, alphabet_size=20, seed=29)
    source = workdir / "crawl.tsv"
    source.write_text(graph_to_edge_list(graph), encoding="utf-8")
    print(f"source file: {source} ({source.stat().st_size / 1e6:.1f} MB)")

    # 1. Stream it into an interned CSR index; progress callbacks and
    #    malformed-line policies ('raise'/'skip') are available.
    started = time.perf_counter()
    ingestion = ingest_edge_list(
        source,
        progress=lambda lines, edges: print(f"  ... {lines} lines, {edges} edges"),
        progress_every=8_000,
    )
    print(
        f"ingested {ingestion.report.edges_added} edges / "
        f"{ingestion.report.nodes_added} nodes in {time.perf_counter() - started:.2f}s"
    )

    # 2. Save it as a binary snapshot and register it in a catalog.
    catalog = DatasetCatalog(workdir / "snapshots")
    snapshot_path = catalog.root / "crawl.rgz"
    ingestion.save(snapshot_path)
    catalog.register("crawl", snapshot_path)
    info = snapshot_info(snapshot_path)
    print(f"snapshot: {info['file_bytes'] / 1e6:.1f} MB, sections: {sorted(info['sections'])}")

    # 3. Reopen it zero-copy: the CSR arrays are mmap views, the engine
    #    adopts them, and no index build happens.
    started = time.perf_counter()
    ws = Workspace.open_snapshot(
        "crawl", storage=StorageConfig(catalog_root=str(catalog.root))
    )
    print(f"snapshot open: {time.perf_counter() - started:.3f}s -> {ws}")

    result = ws.query("l00.l01*")
    print(f"query 'l00.l01*' selects {result.count} nodes in {result.elapsed:.3f}s")
    print("engine stats:", {k: ws.stats()[k] for k in ("index_builds", "evaluations")})

    # 4. The snapshot workspace is frozen; thaw for a mutable copy.
    thawed = ws.graph.thaw()
    thawed.add_edge("n0000", "l00", "brand-new-node")
    print("thawed copy:", Workspace(thawed).query("l00.l01*").count, "nodes selected")


if __name__ == "__main__":
    main()
