"""Quickstart for the public Workspace API: one facade for the whole pipeline.

The same story as ``quickstart.py`` -- learn ``(tram+bus)*.cinema`` on the
Figure 1 geographical graph from a handful of labels -- but through the
typed public surface: a :class:`repro.Workspace` owning the graph and a
private query engine, frozen config dataclasses instead of loose keyword
arguments, and results that all serialize to the same JSON envelope the
``python -m repro`` CLI emits.

Run with:  PYTHONPATH=src python examples/workspace_quickstart.py
"""

from __future__ import annotations

from repro import (
    ExperimentConfig,
    InteractiveConfig,
    LearnerConfig,
    Sample,
    Workspace,
    result_to_json,
)


def main() -> None:
    # A workspace owns a graph plus a private engine (isolated caches/stats).
    ws = Workspace.from_figure("geo")
    print("Workspace:", ws)
    print()

    # 1. Evaluate a query (monadic semantics): which neighborhoods can reach
    #    a cinema by public transportation?
    evaluation = ws.query("(tram+bus)*.cinema")
    print("Goal query selects:", evaluation.nodes())
    print()

    # 2. Learn from a fixed sample (Algorithm 1, dynamic k by default).
    sample = Sample(positives={"N2", "N6"}, negatives={"N5"})
    learned = ws.learn(sample, LearnerConfig(k=2, k_max=4))
    print("Learned from 3 labels:", learned.query.expression)
    print("Result as JSON envelope:")
    print(result_to_json(learned, indent=2))
    print()

    # 3. Learn interactively (the Figure 9 loop with a simulated user).
    session = ws.learn_interactive(
        "(tram+bus)*.cinema", InteractiveConfig(strategy="kS", max_interactions=30)
    )
    print(
        f"Interactive session: {session.interaction_count} labels, "
        f"halted by {session.halted_by!r}, learned {session.query.expression!r}"
    )
    print()

    # 4. Run a Section 5 experiment end to end on the workspace graph.
    sweep = ws.run_experiment(
        ExperimentConfig(goal="(tram+bus)*.cinema", labeled_fractions=(0.3, 0.6, 0.9))
    )
    for point in sweep.points:
        print(
            f"static sweep: {point.labeled_fraction:.0%} labeled -> F1 {point.f1:.2f}"
        )
    print()

    # 5. Engine observability: every call above ran on this workspace's
    #    engine, so the counters describe exactly the work done here.
    stats = ws.stats()
    print(
        "Workspace engine: "
        f"{stats['evaluations']} evaluations, "
        f"{stats['plan_compilations']} plans compiled, "
        f"result-cache hit rate {stats['result_cache_hit_rate']:.0%}"
    )


if __name__ == "__main__":
    main()
